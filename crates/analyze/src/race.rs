//! `A001 shared-variable-race` and `A010 unproven-interleaving`:
//! concurrent unserialized accesses, split by provability.
//!
//! A variable is *raced* when two distinct processes can each reach a
//! channel accessing it, at least one of those channels writes, the
//! channels' concurrency tags allow the accesses to overlap in time, and
//! the partition does not serialize the two processes onto the same
//! component. The paper's estimation model (Section 3) sums access
//! contributions as if each is well-ordered; a race makes both the spec's
//! meaning and the estimate unreliable.
//!
//! The happens-before refinement splits that topological criterion by
//! observed execution: a race is *proven* (stays `A001`, deny) only when
//! both accesses sit on call/access paths whose every channel has a
//! positive observed access frequency — some execution actually drives
//! both sides. An interleaving that exists in the graph but crosses a
//! channel with zero observed frequency is real enough to mention but
//! not proven; it reports as `A010` (warn) instead. The two lints
//! partition the old `A001` finding set: refinement strictly reduces
//! deny-level findings without losing a single true positive.
//!
//! Reachability is computed as one bitset per behavior (which processes
//! can reach it through call/message edges), so each pass is
//! `O(P·E + C²)` per variable-incident channel pair, with `P` processes
//! and `E` behavior edges.

use crate::analyzer::{Ctx, Sink};
use crate::lint::LintId;
use slif_core::{AccessKind, AccessTarget, ConcurrencyTag, NodeId, Partition};

/// Which half of the refined `A001` split a run reports.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Proven races only (`A001`).
    Proven,
    /// Topologically possible but unproven interleavings only (`A010`).
    Unproven,
}

/// The `A001` pass: proven races.
pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    run_mode(ctx, sink, Mode::Proven);
}

/// The `A010` pass: unproven interleavings.
pub(crate) fn run_unproven(ctx: &Ctx<'_>, sink: &mut Sink<'_>) {
    run_mode(ctx, sink, Mode::Unproven);
}

fn run_mode(ctx: &Ctx<'_>, sink: &mut Sink<'_>, mode: Mode) {
    let cd = ctx.cd;
    let procs = cd.process_nodes();
    if procs.len() < 2 {
        // A single process cannot race with itself: its accesses are
        // ordered by its own control flow.
        return;
    }
    let words = procs.len().div_ceil(64);
    let reach_any = process_reachability(cd, procs, words, false);
    let reach_live = process_reachability(cd, procs, words, true);

    for v in cd.node_ids() {
        if !cd.node_kind(v).is_variable() {
            continue;
        }
        let incoming = cd.accessors_of(v);
        // Keys are (process, process) index pairs; one finding per
        // (variable, pair). Proven keys are collected in full before
        // unproven candidates are emitted, so a pair proven through any
        // channel pair never double-reports as A010.
        let mut proven_keys: Vec<(usize, usize)> = Vec::new();
        let mut unproven: Vec<((usize, usize), slif_core::ChannelId, slif_core::ChannelId)> =
            Vec::new();
        for (i, &c1) in incoming.iter().enumerate() {
            for &c2 in &incoming[i..] {
                let k1 = cd.chan_kind(c1);
                let k2 = cd.chan_kind(c2);
                if k1 != AccessKind::Write && k2 != AccessKind::Write {
                    continue; // two readers never race
                }
                if c1 == c2 && k1 != AccessKind::Write {
                    continue; // a channel only races itself when it writes
                }
                if !tags_overlap(cd.chan_tag(c1), cd.chan_tag(c2)) {
                    continue;
                }
                let s1 = cd.chan_src(c1);
                let s2 = cd.chan_src(c2);
                if s1.index() >= cd.node_count() || s2.index() >= cd.node_count() {
                    continue; // dangling source: the validator's finding
                }
                let any1 = &reach_any[s1.index() * words..(s1.index() + 1) * words];
                let any2 = &reach_any[s2.index() * words..(s2.index() + 1) * words];
                let Some((pa, pb)) = racing_pair(any1, any2, procs, ctx.partition) else {
                    continue;
                };
                // Proven: the accesses themselves were observed executing
                // and both sides are reachable through observed channels.
                let live_access = cd.chan_freq(c1).max > 0 && cd.chan_freq(c2).max > 0;
                let proven_pair = if live_access {
                    let live1 = &reach_live[s1.index() * words..(s1.index() + 1) * words];
                    let live2 = &reach_live[s2.index() * words..(s2.index() + 1) * words];
                    racing_pair(live1, live2, procs, ctx.partition)
                } else {
                    None
                };
                match proven_pair {
                    Some((qa, qb)) => {
                        let key = (qa.min(qb), qa.max(qb));
                        if proven_keys.contains(&key) {
                            continue;
                        }
                        proven_keys.push(key);
                        if mode == Mode::Proven {
                            sink.emit(
                                LintId::SharedVariableRace,
                                Some(v),
                                Some(c1),
                                format!(
                                    "variable {v} ({}) can be accessed concurrently with a write: \
                                     processes {} ({}) and {} ({}) reach channels {c1} and {c2} \
                                     with overlapping concurrency, and the partition does not \
                                     serialize them",
                                    cd.node_name(v),
                                    procs[key.0],
                                    cd.node_name(procs[key.0]),
                                    procs[key.1],
                                    cd.node_name(procs[key.1]),
                                ),
                            );
                        }
                    }
                    None => {
                        let key = (pa.min(pb), pa.max(pb));
                        if !unproven.iter().any(|(k, ..)| *k == key) {
                            unproven.push((key, c1, c2));
                        }
                    }
                }
            }
        }
        if mode == Mode::Unproven {
            for (key, c1, c2) in unproven {
                if proven_keys.contains(&key) {
                    continue; // already a deny-level A001 for this pair
                }
                sink.emit(
                    LintId::UnprovenInterleaving,
                    Some(v),
                    Some(c1),
                    format!(
                        "variable {v} ({}) may interleave with a write: processes \
                         {} ({}) and {} ({}) reach channels {c1} and {c2} with \
                         overlapping concurrency, but no observed execution proves \
                         the interleaving (a reaching channel has zero access \
                         frequency)",
                        cd.node_name(v),
                        procs[key.0],
                        cd.node_name(procs[key.0]),
                        procs[key.1],
                        cd.node_name(procs[key.1]),
                    ),
                );
            }
        }
    }
}

/// One bitset per node: which process indices can reach this behavior
/// through behavior→behavior edges (a process reaches itself). With
/// `live_only`, only channels with a positive observed access frequency
/// are followed — the happens-before half of the `A001`/`A010` split.
fn process_reachability(
    cd: &slif_core::CompiledDesign,
    procs: &[NodeId],
    words: usize,
    live_only: bool,
) -> Vec<u64> {
    let mut reach = vec![0u64; cd.node_count() * words];
    let mut stack: Vec<NodeId> = Vec::new();
    for (pi, &p) in procs.iter().enumerate() {
        if p.index() >= cd.node_count() {
            continue;
        }
        let (w, bit) = (pi / 64, 1u64 << (pi % 64));
        stack.push(p);
        while let Some(n) = stack.pop() {
            let slot = n.index() * words + w;
            if reach[slot] & bit != 0 {
                continue;
            }
            reach[slot] |= bit;
            for &c in cd.channels_of(n) {
                if live_only && cd.chan_freq(c).max == 0 {
                    continue;
                }
                if let AccessTarget::Node(d) = cd.chan_dst(c) {
                    if d.index() < cd.node_count() && cd.node_kind(d).is_behavior() {
                        stack.push(d);
                    }
                }
            }
        }
    }
    reach
}

/// Two accesses can overlap in time unless *both* carry concurrency tags
/// of different groups: a tagged pair in distinct groups is scheduled
/// apart by construction, everything else (untagged, or same group) may
/// interleave.
fn tags_overlap(a: ConcurrencyTag, b: ConcurrencyTag) -> bool {
    !a.is_concurrent() || !b.is_concurrent() || a == b
}

/// Finds a pair of *distinct* processes, one reaching each channel
/// source, that the partition does not serialize onto one component.
fn racing_pair(
    r1: &[u64],
    r2: &[u64],
    procs: &[NodeId],
    partition: Option<&Partition>,
) -> Option<(usize, usize)> {
    for pa in iter_bits(r1) {
        for pb in iter_bits(r2) {
            if pa == pb {
                continue;
            }
            if serialized(procs[pa], procs[pb], partition) {
                continue;
            }
            return Some((pa, pb));
        }
    }
    None
}

/// Two processes mapped onto the same component execute sequentially
/// there; that serializes their accesses. Unmapped processes (or no
/// partition at all) are conservatively treated as parallel.
fn serialized(a: NodeId, b: NodeId, partition: Option<&Partition>) -> bool {
    let Some(p) = partition else {
        return false;
    };
    match (p.node_component(a), p.node_component(b)) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    }
}

fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        (0..64).filter(move |b| w & (1u64 << b) != 0).map(move |b| wi * 64 + b)
    })
}

#[cfg(test)]
mod tests {
    use crate::lint::{AnalysisConfig, LintId};
    use crate::{analyze, LintLevel};
    use slif_core::{
        AccessKind, Bus, ClassKind, ConcurrencyTag, Design, NodeKind, Partition,
    };

    /// Two processes both writing one shared variable, no tags, no
    /// serializing partition.
    fn racy_fixture() -> (Design, Partition) {
        let mut d = Design::new("racy");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(a, v.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(b, v.into(), AccessKind::Write)
            .expect("fixture channel");
        for n in [a, b] {
            d.graph_mut().node_mut(n).ict_mut().set(pc, 10);
            d.graph_mut().node_mut(n).size_mut().set(pc, 100);
        }
        d.graph_mut().node_mut(v).ict_mut().set(pc, 1);
        d.graph_mut().node_mut(v).size_mut().set(pc, 1);
        let cpu0 = d.add_processor("cpu0", pc);
        let cpu1 = d.add_processor("cpu1", pc);
        let bus = d.add_bus(Bus::new("b", 8, 1, 2));
        let mut p = Partition::new(&d);
        p.assign_node(a, cpu0.into());
        p.assign_node(b, cpu1.into());
        p.assign_node(v, cpu0.into());
        for c in d.graph().channel_ids() {
            p.assign_channel(c, bus);
        }
        (d, p)
    }

    #[test]
    fn two_writers_on_distinct_cpus_race() {
        let (d, p) = racy_fixture();
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        let races: Vec<_> = report.of(LintId::SharedVariableRace).collect();
        assert_eq!(races.len(), 1, "{report}");
        assert_eq!(races[0].level, LintLevel::Deny);
        assert!(races[0].message.contains("(v)"), "{}", races[0].message);
        assert!(report.has_denials());
    }

    #[test]
    fn write_read_pair_races_too() {
        let mut d = Design::new("wr");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(a, v.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(b, v.into(), AccessKind::Read)
            .expect("fixture channel");
        let cpu0 = d.add_processor("cpu0", pc);
        let cpu1 = d.add_processor("cpu1", pc);
        let mut p = Partition::new(&d);
        p.assign_node(a, cpu0.into());
        p.assign_node(b, cpu1.into());
        p.assign_node(v, cpu0.into());
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 1, "{report}");
    }

    #[test]
    fn same_component_serializes() {
        let (d, mut p) = racy_fixture();
        // Move both processes onto cpu0: time-sharing serializes them.
        let b = d.graph().node_by_name("B").expect("B exists");
        let cpu0 = d.processor_ids().next().expect("cpu0 exists").into();
        p.assign_node(b, cpu0);
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 0, "{report}");
    }

    #[test]
    fn no_partition_is_conservatively_racy() {
        let (d, _) = racy_fixture();
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 1, "{report}");
    }

    #[test]
    fn distinct_concurrency_groups_do_not_overlap() {
        let (mut d, p) = racy_fixture();
        let cs: Vec<_> = d.graph().channel_ids().collect();
        d.graph_mut()
            .channel_mut(cs[0])
            .set_tag(ConcurrencyTag::group(1));
        d.graph_mut()
            .channel_mut(cs[1])
            .set_tag(ConcurrencyTag::group(2));
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 0, "{report}");
        // Same group overlaps again.
        d.graph_mut()
            .channel_mut(cs[1])
            .set_tag(ConcurrencyTag::group(1));
        let report = analyze(&d, Some(&p), &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 1, "{report}");
    }

    #[test]
    fn two_readers_never_race() {
        let mut d = Design::new("rr");
        let pc = d.add_class("proc", ClassKind::StdProcessor);
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(8));
        d.graph_mut()
            .add_channel(a, v.into(), AccessKind::Read)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(b, v.into(), AccessKind::Read)
            .expect("fixture channel");
        let _ = pc;
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 0, "{report}");
    }

    #[test]
    fn race_through_called_procedure_is_found() {
        // A -> helper -> write v; B -> write v. The write reached through
        // the call chain still races with B's direct write.
        let mut d = Design::new("indirect");
        let a = d.graph_mut().add_node("A", NodeKind::process());
        let b = d.graph_mut().add_node("B", NodeKind::process());
        let h = d.graph_mut().add_node("helper", NodeKind::procedure());
        let v = d.graph_mut().add_node("v", NodeKind::scalar(16));
        d.graph_mut()
            .add_channel(a, h.into(), AccessKind::Call)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(h, v.into(), AccessKind::Write)
            .expect("fixture channel");
        d.graph_mut()
            .add_channel(b, v.into(), AccessKind::Write)
            .expect("fixture channel");
        let report = analyze(&d, None, &AnalysisConfig::new());
        assert_eq!(report.of(LintId::SharedVariableRace).count(), 1, "{report}");
    }
}
