//! The analyzer driver: compiles (or borrows) the design view, runs
//! every pass in lint order, and aggregates the findings.

use crate::lint::{AnalysisConfig, LintId, LintLevel};
use crate::report::{AnalysisReport, Finding};
use crate::{annotation, bitwidth, cycle, race, reach};
use slif_core::{ChannelId, CompiledDesign, Design, NodeId, Partition};

// `SourceMap` moved to `slif-speclang` (spans originate there); this
// re-export keeps the historical `slif_analyze::SourceMap` path working.
pub use slif_speclang::SourceMap;

/// Everything a pass reads. The partition is pre-filtered: when its
/// slot shape does not match the compiled design (a stale or corrupted
/// pairing the validator reports separately), passes see `None` instead
/// of indexing it out of range.
pub(crate) struct Ctx<'a> {
    pub cd: &'a CompiledDesign,
    pub partition: Option<&'a Partition>,
    pub config: &'a AnalysisConfig,
}

/// Where passes put findings. Applies the configured level: `Allow`ed
/// findings are counted, not kept.
pub(crate) struct Sink<'a> {
    config: &'a AnalysisConfig,
    findings: Vec<Finding>,
    suppressed: usize,
}

impl<'a> Sink<'a> {
    pub(crate) fn new(config: &'a AnalysisConfig) -> Self {
        Self {
            config,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    pub(crate) fn into_parts(self) -> (Vec<Finding>, usize) {
        (self.findings, self.suppressed)
    }

    pub(crate) fn emit(
        &mut self,
        lint: LintId,
        node: Option<NodeId>,
        channel: Option<ChannelId>,
        message: String,
    ) {
        match self.config.effective_level(lint) {
            LintLevel::Allow => self.suppressed += 1,
            level => self.findings.push(Finding {
                lint,
                level,
                message,
                node,
                channel,
                span: None,
            }),
        }
    }
}

/// Analyzes a design, compiling the query view first. Equivalent to
/// [`CompiledDesign::compile`] followed by [`analyze_compiled`]; callers
/// that already hold a compiled view should use the latter.
pub fn analyze(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_compiled(&cd, partition, config)
}

/// Runs every lint pass over a compiled design view.
///
/// The analysis is *total* and *pure*: it never fails, never panics
/// (every index is range-checked, so fault-injected designs are fair
/// inputs), and the same inputs produce an `==` report with
/// byte-identical rendering.
pub fn analyze_compiled(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, None)
}

/// [`analyze`] plus span attachment: findings anchored to a node whose
/// name the [`SourceMap`] knows get that source location.
pub fn analyze_with_sources(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_inner(&cd, partition, config, Some(sources))
}

/// [`analyze_compiled`] plus span attachment, for callers that already
/// hold a compiled view (edit sessions patch theirs in place instead of
/// recompiling).
pub fn analyze_compiled_with_sources(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, Some(sources))
}

/// Drops a partition whose slot shape does not match the compiled view
/// (a stale or corrupted pairing the validator reports separately), so
/// passes never index it out of range.
pub(crate) fn shape_checked<'a>(
    cd: &CompiledDesign,
    partition: Option<&'a Partition>,
) -> Option<&'a Partition> {
    partition
        .filter(|p| p.node_slots() == cd.node_count() && p.channel_slots() == cd.channel_count())
}

/// Attaches source spans to node-anchored findings. Spans are a
/// per-revision property of the *source text*, not of the analysis, so
/// memoized reruns re-attach them from the current map every time.
pub(crate) fn attach_spans(cd: &CompiledDesign, map: &SourceMap, findings: &mut [Finding]) {
    for f in findings {
        if let Some(n) = f.node {
            if n.index() < cd.node_count() {
                f.span = map.span_of(cd.node_name(n));
            }
        }
    }
}

fn analyze_inner(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: Option<&SourceMap>,
) -> AnalysisReport {
    let partition = shape_checked(cd, partition);
    let ctx = Ctx {
        cd,
        partition,
        config,
    };
    let mut sink = Sink::new(config);
    race::run(&ctx, &mut sink);
    reach::run(&ctx, &mut sink);
    cycle::run(&ctx, &mut sink);
    bitwidth::run(&ctx, &mut sink);
    annotation::run(&ctx, &mut sink);

    let (mut findings, suppressed) = sink.into_parts();
    if let Some(map) = sources {
        attach_spans(cd, map, &mut findings);
    }
    AnalysisReport::new(findings, suppressed)
}

// The `SourceMap` unit tests moved with the type to
// `slif_speclang::sourcemap`.
