//! The analyzer driver: compiles (or borrows) the design view, runs
//! every pass in lint order, and aggregates the findings.

use crate::lint::{AnalysisConfig, LintId, LintLevel};
use crate::report::{AnalysisReport, Finding};
use crate::{annotation, bitwidth, cycle, race, reach};
use slif_core::{ChannelId, CompiledDesign, Design, NodeId, Partition};
use slif_speclang::{Span, Spec};
use std::collections::HashMap;

/// Specification-source locations for the graph's named objects, used to
/// attach [`Span`]s to findings.
///
/// The frontend names behavior nodes after their `BehaviorDecl` and
/// variable nodes after their `VarDecl`, so a name-keyed map recovers
/// the source location of most nodes; nodes without a mapped name (e.g.
/// synthesized helpers) simply get no span.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    spans: HashMap<String, Span>,
}

impl SourceMap {
    /// Builds the map from a parsed specification: every behavior,
    /// system-level variable, and behavior-local variable by name.
    pub fn from_spec(spec: &Spec) -> Self {
        let mut spans = HashMap::new();
        for v in &spec.vars {
            spans.insert(v.name.clone(), v.span);
        }
        for b in &spec.behaviors {
            spans.insert(b.name.clone(), b.span);
            for local in &b.locals {
                spans.entry(local.name.clone()).or_insert(local.span);
            }
        }
        Self { spans }
    }

    /// Records (or replaces) one name's location.
    pub fn insert(&mut self, name: impl Into<String>, span: Span) {
        self.spans.insert(name.into(), span);
    }

    /// The recorded location of `name`, if any.
    pub fn span_of(&self, name: &str) -> Option<Span> {
        self.spans.get(name).copied()
    }

    /// Number of recorded names.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` when no names are recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

/// Everything a pass reads. The partition is pre-filtered: when its
/// slot shape does not match the compiled design (a stale or corrupted
/// pairing the validator reports separately), passes see `None` instead
/// of indexing it out of range.
pub(crate) struct Ctx<'a> {
    pub cd: &'a CompiledDesign,
    pub partition: Option<&'a Partition>,
    pub config: &'a AnalysisConfig,
}

/// Where passes put findings. Applies the configured level: `Allow`ed
/// findings are counted, not kept.
pub(crate) struct Sink<'a> {
    config: &'a AnalysisConfig,
    findings: Vec<Finding>,
    suppressed: usize,
}

impl Sink<'_> {
    pub(crate) fn emit(
        &mut self,
        lint: LintId,
        node: Option<NodeId>,
        channel: Option<ChannelId>,
        message: String,
    ) {
        match self.config.effective_level(lint) {
            LintLevel::Allow => self.suppressed += 1,
            level => self.findings.push(Finding {
                lint,
                level,
                message,
                node,
                channel,
                span: None,
            }),
        }
    }
}

/// Analyzes a design, compiling the query view first. Equivalent to
/// [`CompiledDesign::compile`] followed by [`analyze_compiled`]; callers
/// that already hold a compiled view should use the latter.
pub fn analyze(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_compiled(&cd, partition, config)
}

/// Runs every lint pass over a compiled design view.
///
/// The analysis is *total* and *pure*: it never fails, never panics
/// (every index is range-checked, so fault-injected designs are fair
/// inputs), and the same inputs produce an `==` report with
/// byte-identical rendering.
pub fn analyze_compiled(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, None)
}

/// [`analyze`] plus span attachment: findings anchored to a node whose
/// name the [`SourceMap`] knows get that source location.
pub fn analyze_with_sources(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_inner(&cd, partition, config, Some(sources))
}

fn analyze_inner(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: Option<&SourceMap>,
) -> AnalysisReport {
    let partition = partition.filter(|p| {
        p.node_slots() == cd.node_count() && p.channel_slots() == cd.channel_count()
    });
    let ctx = Ctx {
        cd,
        partition,
        config,
    };
    let mut sink = Sink {
        config,
        findings: Vec::new(),
        suppressed: 0,
    };
    race::run(&ctx, &mut sink);
    reach::run(&ctx, &mut sink);
    cycle::run(&ctx, &mut sink);
    bitwidth::run(&ctx, &mut sink);
    annotation::run(&ctx, &mut sink);

    let mut findings = sink.findings;
    if let Some(map) = sources {
        for f in &mut findings {
            if let Some(n) = f.node {
                if n.index() < cd.node_count() {
                    f.span = map.span_of(cd.node_name(n));
                }
            }
        }
    }
    AnalysisReport::new(findings, sink.suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_speclang::parse;

    #[test]
    fn source_map_covers_vars_and_behaviors() {
        let spec = parse(
            "system T;\nvar g : int<8>;\nprocess Main { var l : int<4>; l = g; }\n",
        )
        .expect("fixture parses");
        let map = SourceMap::from_spec(&spec);
        assert!(!map.is_empty());
        assert_eq!(map.len(), 3);
        let g = map.span_of("g").expect("g recorded");
        assert_eq!(g.line, 2);
        assert!(map.span_of("Main").is_some());
        assert!(map.span_of("l").is_some());
        assert!(map.span_of("nope").is_none());
    }

    #[test]
    fn source_map_insert_overrides() {
        let mut map = SourceMap::default();
        let span = Span {
            start: 1,
            end: 2,
            line: 9,
            col: 4,
        };
        map.insert("x", span);
        assert_eq!(map.span_of("x"), Some(span));
    }
}
