//! The analyzer driver: compiles (or borrows) the design view, runs
//! every pass in lint order, and aggregates the findings.

use crate::dataflow::AnalysisError;
use crate::flowdrive;
use crate::lint::{AnalysisConfig, LintId, LintLevel};
use crate::report::{AnalysisReport, Finding};
use crate::{annotation, bitwidth, cycle, race, reach};
use slif_core::{ChannelId, CompiledDesign, Design, NodeId, Partition};
use slif_speclang::{FlowProgram, Suppressions};

// `SourceMap` moved to `slif-speclang` (spans originate there); this
// re-export keeps the historical `slif_analyze::SourceMap` path working.
pub use slif_speclang::SourceMap;

/// Everything a pass reads. The partition is pre-filtered: when its
/// slot shape does not match the compiled design (a stale or corrupted
/// pairing the validator reports separately), passes see `None` instead
/// of indexing it out of range.
pub(crate) struct Ctx<'a> {
    pub cd: &'a CompiledDesign,
    pub partition: Option<&'a Partition>,
    pub config: &'a AnalysisConfig,
}

/// Where passes put findings. Applies the configured level (`Allow`ed
/// findings are counted, not kept) and, when the caller supplied the
/// spec's `@allow` suppressions, drops findings whose anchor node's name
/// carries a matching suppression.
pub(crate) struct Sink<'a> {
    config: &'a AnalysisConfig,
    suppressions: Option<(&'a Suppressions, &'a CompiledDesign)>,
    findings: Vec<Finding>,
    suppressed: usize,
}

impl<'a> Sink<'a> {
    pub(crate) fn new(config: &'a AnalysisConfig) -> Self {
        Self {
            config,
            suppressions: None,
            findings: Vec::new(),
            suppressed: 0,
        }
    }

    pub(crate) fn with_suppressions(
        config: &'a AnalysisConfig,
        suppressions: &'a Suppressions,
        cd: &'a CompiledDesign,
    ) -> Self {
        let mut s = Self::new(config);
        if !suppressions.is_empty() {
            s.suppressions = Some((suppressions, cd));
        }
        s
    }

    pub(crate) fn into_parts(self) -> (Vec<Finding>, usize) {
        (self.findings, self.suppressed)
    }

    /// Whether an in-spec `@allow` covers this finding: the anchor node
    /// is a variable or behavior whose declaration allows the code.
    fn spec_allows(&self, lint: LintId, node: Option<NodeId>) -> bool {
        let (Some((sup, cd)), Some(n)) = (self.suppressions, node) else {
            return false;
        };
        if n.index() >= cd.node_count() {
            return false;
        }
        let name = cd.node_name(n);
        sup.var_allows(name, lint.code()) || sup.behavior_allows(name, lint.code())
    }

    pub(crate) fn emit(
        &mut self,
        lint: LintId,
        node: Option<NodeId>,
        channel: Option<ChannelId>,
        message: String,
    ) {
        if self.spec_allows(lint, node) {
            self.suppressed += 1;
            return;
        }
        match self.config.effective_level(lint) {
            LintLevel::Allow => self.suppressed += 1,
            level => self.findings.push(Finding {
                lint,
                level,
                message,
                node,
                channel,
                span: None,
            }),
        }
    }
}

/// Analyzes a design, compiling the query view first. Equivalent to
/// [`CompiledDesign::compile`] followed by [`analyze_compiled`]; callers
/// that already hold a compiled view should use the latter.
pub fn analyze(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_compiled(&cd, partition, config)
}

/// Runs every lint pass over a compiled design view.
///
/// The analysis is *total* and *pure*: it never fails, never panics
/// (every index is range-checked, so fault-injected designs are fair
/// inputs), and the same inputs produce an `==` report with
/// byte-identical rendering.
pub fn analyze_compiled(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, None, None)
}

/// [`analyze`] plus span attachment: findings anchored to a node whose
/// name the [`SourceMap`] knows get that source location.
pub fn analyze_with_sources(
    design: &Design,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
) -> AnalysisReport {
    let cd = CompiledDesign::compile(design);
    analyze_inner(&cd, partition, config, Some(sources), None)
}

/// [`analyze_compiled`] plus span attachment, for callers that already
/// hold a compiled view (edit sessions patch theirs in place instead of
/// recompiling).
pub fn analyze_compiled_with_sources(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: &SourceMap,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, Some(sources), None)
}

/// The full flow-sensitive analysis: everything [`analyze_compiled`]
/// runs, plus the dataflow lints (`A006`–`A009`) solved over `flow` —
/// the behavior-level flow program lowered from the same specification
/// the design was compiled from — and with the spec's `@allow`
/// suppressions honored. Pass `sources` to attach spans to
/// design-node-anchored findings; flow findings carry their statement
/// spans regardless.
pub fn analyze_compiled_with_flow(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    flow: &FlowProgram,
    sources: Option<&SourceMap>,
) -> AnalysisReport {
    analyze_inner(cd, partition, config, sources, Some(flow))
}

/// Verifies every behavior's dataflow fixpoints converge within the
/// configured visit cap ([`AnalysisConfig::max_fixpoint_visits`]).
///
/// The analysis itself is total — a behavior that blows the cap simply
/// degrades to ⊤ and reports nothing — so this is the *typed* surface
/// for callers that want the refusal as an error instead:
/// [`AnalysisError::WideningCapExceeded`] names the behavior and cap.
pub fn check_flow_bounded(flow: &FlowProgram, config: &AnalysisConfig) -> Result<(), AnalysisError> {
    flowdrive::check_bounded(flow, config.max_fixpoint_visits)
}

/// Drops a partition whose slot shape does not match the compiled view
/// (a stale or corrupted pairing the validator reports separately), so
/// passes never index it out of range.
pub(crate) fn shape_checked<'a>(
    cd: &CompiledDesign,
    partition: Option<&'a Partition>,
) -> Option<&'a Partition> {
    partition
        .filter(|p| p.node_slots() == cd.node_count() && p.channel_slots() == cd.channel_count())
}

/// Attaches source spans to node-anchored findings. Spans are a
/// per-revision property of the *source text*, not of the analysis, so
/// memoized reruns re-attach them from the current map every time.
pub(crate) fn attach_spans(cd: &CompiledDesign, map: &SourceMap, findings: &mut [Finding]) {
    for f in findings {
        if let Some(n) = f.node {
            if n.index() < cd.node_count() {
                f.span = map.span_of(cd.node_name(n));
            }
        }
    }
}

fn analyze_inner(
    cd: &CompiledDesign,
    partition: Option<&Partition>,
    config: &AnalysisConfig,
    sources: Option<&SourceMap>,
    flow: Option<&FlowProgram>,
) -> AnalysisReport {
    let partition = shape_checked(cd, partition);
    let ctx = Ctx {
        cd,
        partition,
        config,
    };
    let new_sink = || match flow {
        Some(f) => Sink::with_suppressions(config, &f.suppressions, cd),
        None => Sink::new(config),
    };
    let mut sink = new_sink();
    race::run(&ctx, &mut sink);
    reach::run(&ctx, &mut sink);
    cycle::run(&ctx, &mut sink);
    bitwidth::run(&ctx, &mut sink);
    annotation::run(&ctx, &mut sink);
    let (mut findings, mut suppressed) = sink.into_parts();

    if let Some(f) = flow {
        for (pass_findings, pass_suppressed) in flowdrive::run_flow_passes(f, config, None).passes
        {
            findings.extend(pass_findings);
            suppressed += pass_suppressed;
        }
    }

    // A010 closes the pass sequence so memoized and unmemoized runs
    // order findings identically. It reads only the CSR (frequencies),
    // so it runs with or without a flow program.
    let mut tail = new_sink();
    race::run_unproven(&ctx, &mut tail);
    let (tail_findings, tail_suppressed) = tail.into_parts();
    findings.extend(tail_findings);
    suppressed += tail_suppressed;

    if let Some(map) = sources {
        attach_spans(cd, map, &mut findings);
    }
    AnalysisReport::new(findings, suppressed)
}

// The `SourceMap` unit tests moved with the type to
// `slif_speclang::sourcemap`.
