//! `A009 constant-condition`: branches decided before they run.
//!
//! Reuses the interval fixpoint: a user-written, non-loop-header branch
//! whose condition evaluates to a definite truth value has one arm that
//! no execution takes. Loop headers are exempt (`while true`-style
//! driver loops are an idiom, and `for` headers are synthetic anyway),
//! as is anything the solver marked unreachable — a constant condition
//! in dead code is noise on noise.

use crate::domains::{eval, Interval, Summaries};
use crate::flowdrive::RawFinding;
use crate::lint::LintId;
use slif_speclang::{FlowBehavior, FlowOp};

pub(crate) fn check(
    b: &FlowBehavior,
    states: &[Option<Vec<Interval>>],
    summaries: &Summaries,
) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for (i, n) in b.nodes.iter().enumerate() {
        if n.synthetic {
            continue;
        }
        let FlowOp::Branch {
            cond,
            loop_header: false,
        } = &n.op
        else {
            continue;
        };
        let Some(Some(state)) = states.get(i) else {
            continue;
        };
        let v = eval(cond, state, &b.slots, summaries);
        let Some(truth) = v.truth() else {
            continue;
        };
        let (verdict, dead_arm) = if truth {
            ("true", "else")
        } else {
            ("false", "then")
        };
        out.push(RawFinding {
            lint: LintId::ConstantCondition,
            node: i as u32,
            message: format!(
                "branch condition is always {verdict}: the {dead_arm} arm is \
                 unreachable on every execution"
            ),
        });
    }
    out
}
