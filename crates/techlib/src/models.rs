//! Technology models: processors, ASICs, and memories.
//!
//! The paper annotates every node with "a list of ict weights, one weight
//! for each type of system component on which that node could possibly be
//! implemented", obtained by compiling the behavior for processors and
//! synthesizing it for custom hardware. These models supply the cost
//! tables those steps need. Times are in nanoseconds; sizes in bytes
//! (processors), gate equivalents (ASICs), or words (memories).

use serde::{Deserialize, Serialize};
use slif_cdfg::{AluOp, OpKind, ResourceSet};

/// Weights produced by pre-compiling or pre-synthesizing one behavior for
/// one component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BehaviorWeights {
    /// Internal computation time (ns) of one start-to-finish execution,
    /// *excluding* channel communication (per Equation 1's split).
    pub ict: u64,
    /// Size: bytes (processor) or gates (ASIC).
    pub size: u64,
    /// Shareable datapath portion of `size` (ASICs only).
    pub datapath: Option<u64>,
}

/// Weights for one variable on one component class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VariableWeights {
    /// Storage access time (ns) — the variable's ict.
    pub access_time: u64,
    /// Storage footprint: bytes, gates, or words depending on class.
    pub size: u64,
}

/// A standard (software-programmed) processor model.
///
/// # Examples
///
/// ```
/// use slif_techlib::ProcessorModel;
///
/// let mcu = ProcessorModel::mcu8();
/// assert!(mcu.cycle_ns >= 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcessorModel {
    /// Model name (becomes the SLIF component-class name).
    pub name: String,
    /// Clock period in nanoseconds.
    pub cycle_ns: u64,
    /// Cycles for a multiply (other ALU ops take 1).
    pub mul_cycles: u64,
    /// Cycles for a divide or remainder.
    pub div_cycles: u64,
    /// Cycles for a memory (load/store) operation.
    pub mem_cycles: u64,
    /// Average bytes of code per operation.
    pub bytes_per_op: u64,
    /// Fixed code bytes per behavior (prologue/epilogue).
    pub behavior_overhead_bytes: u64,
    /// Superscalar issue width (1 = strictly sequential). The paper's
    /// future work names "pipelined processors"; a width above one lets
    /// independent operations of a block overlap, bounded below by the
    /// block's dataflow critical path.
    pub issue_width: u32,
}

impl ProcessorModel {
    /// An 8-bit microcontroller: 10 MHz, slow multiply/divide, compact code.
    pub fn mcu8() -> Self {
        Self {
            name: "mcu8".to_owned(),
            cycle_ns: 100,
            mul_cycles: 8,
            div_cycles: 32,
            mem_cycles: 2,
            bytes_per_op: 2,
            behavior_overhead_bytes: 8,
            issue_width: 1,
        }
    }

    /// A 32-bit embedded processor: 25 MHz, hardware multiply.
    pub fn cpu32() -> Self {
        Self {
            name: "cpu32".to_owned(),
            cycle_ns: 40,
            mul_cycles: 3,
            div_cycles: 18,
            mem_cycles: 2,
            bytes_per_op: 4,
            behavior_overhead_bytes: 16,
            issue_width: 1,
        }
    }

    /// A dual-issue pipelined 32-bit RISC: 50 MHz, the paper's
    /// "pipelined processors" future-work architecture.
    pub fn risc32_pipelined() -> Self {
        Self {
            name: "risc32".to_owned(),
            cycle_ns: 20,
            mul_cycles: 3,
            div_cycles: 20,
            mem_cycles: 2,
            bytes_per_op: 4,
            behavior_overhead_bytes: 16,
            issue_width: 2,
        }
    }

    /// Cycles one operation takes on this processor.
    pub fn cycles(&self, kind: &OpKind) -> u64 {
        match kind {
            OpKind::Const(_) => 1,
            OpKind::ReadLocal(_) | OpKind::WriteLocal(_) => 1,
            OpKind::ReadLocalArray(_) | OpKind::WriteLocalArray(_) => self.mem_cycles,
            OpKind::Binary(AluOp::Mul) => self.mul_cycles,
            OpKind::Binary(AluOp::Div) | OpKind::Binary(AluOp::Rem) => self.div_cycles,
            OpKind::Binary(_) | OpKind::Unary(_) => 1,
            OpKind::Branch => 2,
            OpKind::Jump => 1,
            OpKind::Fork | OpKind::Join => 2,
            OpKind::Return => 2,
            OpKind::Wait(_) => 0,
            // System accesses are communication, not internal computation:
            // their time comes from channel transfer estimation.
            _ => 0,
        }
    }

    /// Code bytes one operation occupies (system-access ops still occupy
    /// code space even though their *time* is communication).
    pub fn bytes(&self, kind: &OpKind) -> u64 {
        match kind {
            OpKind::Wait(_) => self.bytes_per_op,
            OpKind::Call(_) => 2 * self.bytes_per_op,
            _ => self.bytes_per_op,
        }
    }

    /// Weights for a variable held in the processor's own memory.
    pub fn variable(&self, words: u64, word_bits: u32) -> VariableWeights {
        let bytes_per_word = u64::from(word_bits.div_ceil(8));
        VariableWeights {
            access_time: self.mem_cycles * self.cycle_ns,
            size: words * bytes_per_word,
        }
    }
}

/// A custom-hardware (ASIC or FPGA) technology model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsicModel {
    /// Model name (becomes the SLIF component-class name).
    pub name: String,
    /// Clock period in nanoseconds.
    pub cycle_ns: u64,
    /// Datapath resources available to the scheduler.
    pub resources: ResourceSet,
    /// Gates per ALU instance.
    pub alu_gates: u64,
    /// Gates per multiplier instance.
    pub mul_gates: u64,
    /// Gates per divider instance.
    pub div_gates: u64,
    /// Gates per memory port.
    pub mem_port_gates: u64,
    /// Gates per stored bit (registers and local arrays).
    pub gates_per_bit: u64,
    /// Control gates per controller state (block).
    pub state_gates: u64,
    /// Control gates per operation (decode/steering logic).
    pub op_ctrl_gates: u64,
}

impl AsicModel {
    /// A gate-array ASIC: 20 ns clock, small datapath.
    pub fn gate_array() -> Self {
        Self {
            name: "asic_ga".to_owned(),
            cycle_ns: 20,
            resources: ResourceSet::small(),
            alu_gates: 400,
            mul_gates: 2500,
            div_gates: 4000,
            mem_port_gates: 300,
            gates_per_bit: 8,
            state_gates: 40,
            op_ctrl_gates: 6,
        }
    }

    /// An FPGA: slower clock, cheaper "gates" (logic cells scaled), wider
    /// datapath.
    pub fn fpga() -> Self {
        Self {
            name: "fpga".to_owned(),
            cycle_ns: 50,
            resources: ResourceSet::large(),
            alu_gates: 250,
            mul_gates: 1800,
            div_gates: 3200,
            mem_port_gates: 200,
            gates_per_bit: 4,
            state_gates: 30,
            op_ctrl_gates: 5,
        }
    }

    /// Cycles one operation takes on this technology's datapath.
    pub fn cycles(&self, kind: &OpKind) -> u64 {
        match kind {
            OpKind::Const(_) => 0,
            OpKind::ReadLocal(_) | OpKind::WriteLocal(_) => 1,
            OpKind::ReadLocalArray(_) | OpKind::WriteLocalArray(_) => 1,
            OpKind::Binary(AluOp::Mul) => 2,
            OpKind::Binary(AluOp::Div) | OpKind::Binary(AluOp::Rem) => 8,
            OpKind::Binary(_) | OpKind::Unary(_) => 1,
            OpKind::Branch | OpKind::Jump | OpKind::Return => 1,
            OpKind::Fork | OpKind::Join => 1,
            OpKind::Wait(_) => 0,
            // Channel communication is estimated separately.
            _ => 0,
        }
    }

    /// Weights for a variable implemented as on-chip storage.
    pub fn variable(&self, words: u64, word_bits: u32) -> VariableWeights {
        VariableWeights {
            access_time: self.cycle_ns,
            size: words * u64::from(word_bits) * self.gates_per_bit,
        }
    }
}

/// A standard memory component model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Model name (becomes the SLIF component-class name).
    pub name: String,
    /// Read/write access time in nanoseconds.
    pub access_ns: u64,
    /// Word width in bits.
    pub word_bits: u32,
}

impl MemoryModel {
    /// A fast SRAM: 20 ns, 8-bit words.
    pub fn sram() -> Self {
        Self {
            name: "sram".to_owned(),
            access_ns: 20,
            word_bits: 8,
        }
    }

    /// A DRAM: 80 ns, 16-bit words.
    pub fn dram() -> Self {
        Self {
            name: "dram".to_owned(),
            access_ns: 80,
            word_bits: 16,
        }
    }

    /// Weights for a variable stored in this memory: size is in memory
    /// words (a variable word wider than the memory word takes several).
    pub fn variable(&self, words: u64, word_bits: u32) -> VariableWeights {
        let per_var_word = u64::from(word_bits.div_ceil(self.word_bits));
        VariableWeights {
            access_time: self.access_ns * per_var_word,
            size: words * per_var_word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_cycles_cost_arithmetic_not_communication() {
        let m = ProcessorModel::mcu8();
        assert_eq!(m.cycles(&OpKind::Binary(AluOp::Add)), 1);
        assert_eq!(m.cycles(&OpKind::Binary(AluOp::Mul)), 8);
        assert_eq!(m.cycles(&OpKind::Binary(AluOp::Div)), 32);
        assert_eq!(m.cycles(&OpKind::ReadGlobal("x".into())), 0);
        assert_eq!(m.cycles(&OpKind::Call("P".into())), 0);
        assert_eq!(m.cycles(&OpKind::WritePort("o".into())), 0);
    }

    #[test]
    fn processor_bytes_cover_all_ops() {
        let m = ProcessorModel::cpu32();
        assert_eq!(m.bytes(&OpKind::Binary(AluOp::Add)), 4);
        assert_eq!(m.bytes(&OpKind::Call("P".into())), 8);
        assert_eq!(m.bytes(&OpKind::ReadGlobal("x".into())), 4);
    }

    #[test]
    fn processor_variable_weights() {
        let m = ProcessorModel::mcu8();
        let w = m.variable(384, 8);
        assert_eq!(w.size, 384);
        assert_eq!(w.access_time, 200);
        // 12-bit words round up to 2 bytes.
        assert_eq!(m.variable(64, 12).size, 128);
    }

    #[test]
    fn asic_variable_weights_scale_with_bits() {
        let a = AsicModel::gate_array();
        assert_eq!(a.variable(1, 8).size, 64);
        assert_eq!(a.variable(128, 8).size, 8192);
        assert_eq!(a.variable(1, 8).access_time, a.cycle_ns);
    }

    #[test]
    fn memory_variable_weights_split_wide_words() {
        let m = MemoryModel::sram();
        // 8-bit variable in an 8-bit memory: one word each.
        assert_eq!(m.variable(384, 8).size, 384);
        // 12-bit variable needs two 8-bit words.
        assert_eq!(m.variable(64, 12).size, 128);
        assert_eq!(m.variable(64, 12).access_time, 40);
    }

    #[test]
    fn models_have_distinct_speed_classes() {
        // The ASIC clock beats the microcontroller, as the paper's
        // Figure 3 example assumes (Convolve: 80 us proc, 10 us ASIC).
        assert!(AsicModel::gate_array().cycle_ns < ProcessorModel::mcu8().cycle_ns);
        assert!(ProcessorModel::cpu32().cycle_ns < ProcessorModel::mcu8().cycle_ns);
    }
}
