//! The pseudo-compiler: CDFG × processor model → ict and code size.
//!
//! "The ict on a standard processor can be estimated through compilation"
//! (Section 2.4.1). This compiler costs each operation from the
//! processor's cycle table — counting *internal* computation only, since
//! channel communication is estimated separately — and weights it by the
//! profiled execution count of its block. Code size counts every
//! operation statically (an instruction exists whether or not it runs).

use crate::models::{BehaviorWeights, ProcessorModel};
use slif_cdfg::{asap, Cdfg};

/// Pre-compiles one behavior for one processor model.
///
/// # Examples
///
/// ```
/// use slif_cdfg::lower_behavior;
/// use slif_techlib::{compile_behavior, ProcessorModel};
///
/// let rs = slif_speclang::parse_and_resolve(
///     "system T;\nvar x : int<8>;\nproc P() { x = x * 3; }",
/// )?;
/// let g = lower_behavior(&rs, 0);
/// let w = compile_behavior(&g, &ProcessorModel::mcu8());
/// assert!(w.ict > 0);
/// assert!(w.size > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn compile_behavior(g: &Cdfg, model: &ProcessorModel) -> BehaviorWeights {
    let mut ict_cycles = 0.0;
    let mut bytes = model.behavior_overhead_bytes;
    for block_id in g.block_ids() {
        let block = g.block(block_id);
        let sum_cycles: u64 = block
            .ops
            .iter()
            .map(|&op| model.cycles(&g.op(op).kind))
            .sum();
        let block_cycles = if model.issue_width > 1 {
            // Pipelined issue: independent ops overlap up to the issue
            // width, but never below the block's dataflow critical path.
            let throughput_bound = (sum_cycles as f64 / f64::from(model.issue_width)).ceil() as u64;
            let critical_path = asap(g, block_id, &|k| model.cycles(k)).latency;
            throughput_bound.max(critical_path)
        } else {
            sum_cycles
        };
        ict_cycles += block.count.avg * block_cycles as f64;
        bytes += block
            .ops
            .iter()
            .map(|&op| model.bytes(&g.op(op).kind))
            .sum::<u64>();
    }
    BehaviorWeights {
        ict: (ict_cycles * model.cycle_ns as f64).round() as u64,
        size: bytes,
        datapath: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_cdfg::lower_behavior;
    use slif_speclang::parse_and_resolve;

    fn weights(src: &str, name: &str, model: &ProcessorModel) -> BehaviorWeights {
        let rs = parse_and_resolve(src).expect("spec loads");
        let idx = rs
            .spec()
            .behaviors
            .iter()
            .position(|b| b.name == name)
            .expect("behavior exists");
        compile_behavior(&lower_behavior(&rs, idx), model)
    }

    #[test]
    fn straight_line_cost_is_exact() {
        // x = x * 3: ReadGlobal(0 cyc) Const(1) Mul(8) WriteGlobal(0) Return(2).
        let w = weights(
            "system T;\nvar x : int<8>;\nproc P() { x = x * 3; }",
            "P",
            &ProcessorModel::mcu8(),
        );
        assert_eq!(w.ict, (1 + 8 + 2) * 100);
        // 5 ops * 2 bytes + 8 overhead.
        assert_eq!(w.size, 18);
    }

    #[test]
    fn loops_multiply_time_not_size() {
        let body =
            "system T;\nvar a : int<8>[64];\nproc P() { for i in 0 .. 63 { a[i] = i + 1; } }";
        let once = "system T;\nvar a : int<8>[64];\nproc P() { a[0] = 0 + 1; }";
        let w_loop = weights(body, "P", &ProcessorModel::mcu8());
        let w_once = weights(once, "P", &ProcessorModel::mcu8());
        // The loop body runs 64 times: time scales far beyond a single pass.
        assert!(
            w_loop.ict > 32 * w_once.ict,
            "{} vs {}",
            w_loop.ict,
            w_once.ict
        );
        // Code size stays within a small constant factor.
        assert!(w_loop.size < 3 * w_once.size);
    }

    #[test]
    fn branch_probability_scales_time() {
        let hot = "system T;\nvar x : int<8>;\nproc P() { if x > 0 prob 0.9 { x = x * 3; } }";
        let cold = "system T;\nvar x : int<8>;\nproc P() { if x > 0 prob 0.1 { x = x * 3; } }";
        let w_hot = weights(hot, "P", &ProcessorModel::mcu8());
        let w_cold = weights(cold, "P", &ProcessorModel::mcu8());
        assert!(w_hot.ict > w_cold.ict);
        assert_eq!(w_hot.size, w_cold.size, "size is static");
    }

    #[test]
    fn faster_processor_gives_smaller_ict() {
        let src = "system T;\nvar x : int<8>;\nproc P() { x = x * 3 / 2; }";
        let slow = weights(src, "P", &ProcessorModel::mcu8());
        let fast = weights(src, "P", &ProcessorModel::cpu32());
        assert!(fast.ict < slow.ict);
    }

    #[test]
    fn pipelined_issue_overlaps_independent_ops() {
        // Four independent assignments: a 2-wide pipeline halves the
        // cycle count (modulo ceil), a dependency chain does not.
        let independent = "system T;\nvar a : int<8>;\nvar b : int<8>;\n\
            proc P() { var t : int<8>; var u : int<8>; t = 1 + 2; u = 3 + 4; t = t + 1; u = u + 1; }";
        let scalar = {
            let mut m = ProcessorModel::risc32_pipelined();
            m.issue_width = 1;
            m
        };
        let wide = ProcessorModel::risc32_pipelined();
        let w_scalar = weights(independent, "P", &scalar);
        let w_wide = weights(independent, "P", &wide);
        assert!(
            w_wide.ict < w_scalar.ict,
            "pipeline should help: {} vs {}",
            w_wide.ict,
            w_scalar.ict
        );
        assert!(
            w_wide.ict * 3 >= w_scalar.ict,
            "but never beyond ~2x: {} vs {}",
            w_wide.ict,
            w_scalar.ict
        );
        assert_eq!(w_wide.size, w_scalar.size, "code size is width-independent");
    }

    #[test]
    fn pipelined_ict_never_beats_the_critical_path() {
        // One expression whose multiplies chain in dataflow: issue width
        // cannot shrink the block below the chain's latency.
        let chain = "system T;\nvar x : int<8>;\nproc P() { x = 1 * 2 * 3 * 4 * 5; }";
        let scalar = {
            let mut m = ProcessorModel::risc32_pipelined();
            m.issue_width = 1;
            m
        };
        let wide = ProcessorModel::risc32_pipelined();
        let w_scalar = weights(chain, "P", &scalar);
        let w_wide = weights(chain, "P", &wide);
        // Scalar: 5 consts + 4 muls (3 cy) + return (2) = 19 cycles.
        assert_eq!(w_scalar.ict, 19 * 20);
        // Wide: throughput bound ceil(19/2) = 10 loses to the mul chain's
        // critical path 1 + 4 × 3 = 13 cycles.
        assert_eq!(w_wide.ict, 13 * 20);
    }

    #[test]
    fn communication_is_excluded_from_ict() {
        // A behavior that only reads/writes globals has ict from Return only.
        let w = weights(
            "system T;\nvar x : int<8>;\nvar y : int<8>;\nproc P() { y = x; }",
            "P",
            &ProcessorModel::mcu8(),
        );
        assert_eq!(w.ict, 200, "only the return costs internal time");
        // But the access instructions still take code space.
        assert!(w.size > ProcessorModel::mcu8().behavior_overhead_bytes);
    }

    #[test]
    fn datapath_split_absent_for_software() {
        let w = weights(
            "system T;\nvar x : int<8>;\nproc P() { x = 1; }",
            "P",
            &ProcessorModel::mcu8(),
        );
        assert_eq!(w.datapath, None);
    }
}
