//! The technology library: the set of component classes a design may
//! allocate from.

use crate::models::{AsicModel, MemoryModel, ProcessorModel};

/// A library of processor, ASIC, and memory technology models.
///
/// The frontend registers one SLIF component class per model and
/// pre-computes every node's ict/size weight against each, so any
/// allocation drawn from the library can be estimated without further
/// preprocessing.
///
/// # Examples
///
/// ```
/// use slif_techlib::TechnologyLibrary;
///
/// let lib = TechnologyLibrary::standard();
/// assert_eq!(lib.processors.len(), 2);
/// assert_eq!(lib.asics.len(), 2);
/// assert_eq!(lib.memories.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TechnologyLibrary {
    /// Standard processor models.
    pub processors: Vec<ProcessorModel>,
    /// Custom-hardware models.
    pub asics: Vec<AsicModel>,
    /// Memory models.
    pub memories: Vec<MemoryModel>,
}

impl TechnologyLibrary {
    /// The standard library: two processors (`mcu8`, `cpu32`), two
    /// custom-hardware technologies (`asic_ga`, `fpga`), two memories
    /// (`sram`, `dram`).
    pub fn standard() -> Self {
        Self {
            processors: vec![ProcessorModel::mcu8(), ProcessorModel::cpu32()],
            asics: vec![AsicModel::gate_array(), AsicModel::fpga()],
            memories: vec![MemoryModel::sram(), MemoryModel::dram()],
        }
    }

    /// The standard library plus the pipelined RISC (`risc32`) — the
    /// paper's "pipelined processors" future-work architecture.
    pub fn extended() -> Self {
        let mut lib = Self::standard();
        lib.processors.push(ProcessorModel::risc32_pipelined());
        lib
    }

    /// A minimal processor+ASIC library (the paper's running
    /// "processor-asic architecture"): `mcu8`, `asic_ga`, `sram`.
    pub fn proc_asic() -> Self {
        Self {
            processors: vec![ProcessorModel::mcu8()],
            asics: vec![AsicModel::gate_array()],
            memories: vec![MemoryModel::sram()],
        }
    }

    /// Total number of component classes.
    pub fn class_count(&self) -> usize {
        self.processors.len() + self.asics.len() + self.memories.len()
    }

    /// All class names, processors then ASICs then memories.
    pub fn class_names(&self) -> Vec<&str> {
        self.processors
            .iter()
            .map(|p| p.name.as_str())
            .chain(self.asics.iter().map(|a| a.name.as_str()))
            .chain(self.memories.iter().map(|m| m.name.as_str()))
            .collect()
    }
}

impl Default for TechnologyLibrary {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_names_are_unique() {
        let lib = TechnologyLibrary::standard();
        let names = lib.class_names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
        assert_eq!(lib.class_count(), 6);
    }

    #[test]
    fn extended_adds_the_pipelined_risc() {
        let lib = TechnologyLibrary::extended();
        assert_eq!(lib.class_count(), 7);
        assert!(lib.class_names().contains(&"risc32"));
    }

    #[test]
    fn proc_asic_is_the_papers_architecture() {
        let lib = TechnologyLibrary::proc_asic();
        assert_eq!(lib.class_names(), vec!["mcu8", "asic_ga", "sram"]);
    }

    #[test]
    fn default_is_standard() {
        assert_eq!(TechnologyLibrary::default(), TechnologyLibrary::standard());
    }
}
