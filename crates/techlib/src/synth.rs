//! The pseudo-synthesizer: CDFG × ASIC model → ict, gates, and schedules.
//!
//! "The ict of a behavior on a custom hardware component ... can be
//! estimated by synthesizing the behavior to a structure using that
//! particular component's technology" (Section 2.4.1). The synthesis here
//! is the estimation-oriented core of that step: resource-constrained
//! list scheduling of every block gives the latency (→ ict) and the peak
//! functional-unit usage (→ datapath area); controller states and
//! steering logic give the control area. The datapath/control split is
//! recorded so the sharing-aware size estimator (the paper's reference
//! \[1\]) can discount shared functional units.

use crate::models::{AsicModel, BehaviorWeights};
use slif_cdfg::{list_schedule, BlockSchedule, Cdfg, FuClass, OpKind};
use std::collections::{HashMap, HashSet};

/// The full result of pre-synthesizing one behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisResult {
    /// The ict/size weights for the SLIF node.
    pub weights: BehaviorWeights,
    /// Per-block schedules (block index order), for concurrency-tag
    /// derivation.
    pub schedules: Vec<BlockSchedule>,
}

/// Pre-synthesizes one behavior for one ASIC model.
///
/// # Examples
///
/// ```
/// use slif_cdfg::lower_behavior;
/// use slif_techlib::{synthesize_behavior, AsicModel};
///
/// let rs = slif_speclang::parse_and_resolve(
///     "system T;\nvar x : int<8>;\nproc P() { x = x * 3; }",
/// )?;
/// let g = lower_behavior(&rs, 0);
/// let result = synthesize_behavior(&g, &AsicModel::gate_array());
/// assert!(result.weights.size > 0);
/// assert!(result.weights.datapath.is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn synthesize_behavior(g: &Cdfg, model: &AsicModel) -> SynthesisResult {
    let delay = |k: &OpKind| model.cycles(k);
    let mut ict_cycles = 0.0;
    let mut peak: HashMap<FuClass, u32> = HashMap::new();
    let mut schedules = Vec::with_capacity(g.block_count());
    for block_id in g.block_ids() {
        let sched = list_schedule(g, block_id, &delay, model.resources);
        ict_cycles += g.block(block_id).count.avg * sched.latency as f64;
        for (&class, &n) in &sched.peak_usage {
            let e = peak.entry(class).or_insert(0);
            *e = (*e).max(n);
        }
        schedules.push(sched);
    }

    // Datapath area: the functional units the schedule actually needed,
    // plus registers for the behavior's local storage.
    let fu_gates = peak
        .iter()
        .map(|(&class, &n)| {
            u64::from(n)
                * match class {
                    FuClass::Alu => model.alu_gates,
                    FuClass::Mul => model.mul_gates,
                    FuClass::Div => model.div_gates,
                    FuClass::Mem => model.mem_port_gates,
                    FuClass::Other => 0,
                }
        })
        .sum::<u64>();
    let reg_gates = local_names(g).len() as u64 * 16 * model.gates_per_bit;
    let datapath = fu_gates + reg_gates;

    // Control area: one state per block (single-block behaviors still
    // need a controller) plus steering logic per operation.
    let control =
        g.block_count() as u64 * model.state_gates + g.node_count() as u64 * model.op_ctrl_gates;

    SynthesisResult {
        weights: BehaviorWeights {
            ict: (ict_cycles * model.cycle_ns as f64).round() as u64,
            size: datapath + control,
            datapath: Some(datapath),
        },
        schedules,
    }
}

/// Distinct behavior-local storage names (locals, params, loop vars) that
/// need registers.
fn local_names(g: &Cdfg) -> HashSet<&str> {
    let mut names = HashSet::new();
    for op in g.op_ids() {
        match &g.op(op).kind {
            OpKind::ReadLocal(n)
            | OpKind::WriteLocal(n)
            | OpKind::ReadLocalArray(n)
            | OpKind::WriteLocalArray(n) => {
                names.insert(n.as_str());
            }
            _ => {}
        }
    }
    names
}

#[cfg(test)]
mod tests {
    use super::*;
    use slif_cdfg::lower_behavior;
    use slif_speclang::parse_and_resolve;

    fn synth(src: &str, name: &str, model: &AsicModel) -> SynthesisResult {
        let rs = parse_and_resolve(src).expect("spec loads");
        let idx = rs
            .spec()
            .behaviors
            .iter()
            .position(|b| b.name == name)
            .expect("behavior exists");
        synthesize_behavior(&lower_behavior(&rs, idx), model)
    }

    const CONV: &str = "system T;\n\
        var a : int<8>[128];\nvar b : int<8>[128];\nvar c : int<8>[128];\n\
        proc Convolve() { for i in 0 .. 127 { c[i] = max(a[i], b[i]); } }";

    #[test]
    fn asic_beats_processor_on_loops() {
        // The paper's Figure 3: Convolve at 80 us on a processor, 10 us on
        // an ASIC — the shape to reproduce is a large ict ratio.
        let rs = parse_and_resolve(CONV).unwrap();
        let g = lower_behavior(&rs, 0);
        let asic = synthesize_behavior(&g, &AsicModel::gate_array());
        let sw = crate::compile::compile_behavior(&g, &crate::models::ProcessorModel::mcu8());
        assert!(
            sw.ict >= 4 * asic.weights.ict,
            "sw {} vs hw {}",
            sw.ict,
            asic.weights.ict
        );
    }

    #[test]
    fn datapath_and_control_split() {
        let r = synth(CONV, "Convolve", &AsicModel::gate_array());
        let dp = r.weights.datapath.unwrap();
        assert!(dp > 0);
        assert!(dp < r.weights.size, "control adds on top of datapath");
    }

    #[test]
    fn bigger_behavior_needs_more_gates() {
        let small = synth(
            "system T;\nvar x : int<8>;\nproc P() { x = x + 1; }",
            "P",
            &AsicModel::gate_array(),
        );
        let big = synth(CONV, "Convolve", &AsicModel::gate_array());
        assert!(big.weights.size > small.weights.size);
    }

    #[test]
    fn fpga_and_gate_array_differ() {
        let ga = synth(CONV, "Convolve", &AsicModel::gate_array());
        let fp = synth(CONV, "Convolve", &AsicModel::fpga());
        assert_ne!(ga.weights, fp.weights);
    }

    #[test]
    fn schedules_returned_per_block() {
        let r = synth(CONV, "Convolve", &AsicModel::gate_array());
        let rs = parse_and_resolve(CONV).unwrap();
        let g = lower_behavior(&rs, 0);
        assert_eq!(r.schedules.len(), g.block_count());
    }

    #[test]
    fn communication_excluded_from_asic_ict() {
        // Pure global reads/writes schedule with zero delay.
        let r = synth(
            "system T;\nvar x : int<8>;\nvar y : int<8>;\nproc P() { y = x; }",
            "P",
            &AsicModel::gate_array(),
        );
        // Only the Return costs a cycle.
        assert_eq!(r.weights.ict, AsicModel::gate_array().cycle_ns);
    }
}
