//! # slif-techlib — technology models and weight preprocessing
//!
//! The paper's estimation speed comes from preprocessing: every behavior
//! is compiled (for each processor class) and synthesized (for each
//! custom-hardware class) **once**, before system design begins, so that
//! estimation during partitioning is pure lookup. This crate is that
//! preprocessing step:
//!
//! * [`ProcessorModel`] / [`AsicModel`] / [`MemoryModel`] — cost models
//!   for the component classes ([`TechnologyLibrary`] bundles them),
//! * [`compile_behavior`] — the pseudo-compiler: CDFG → ict (ns) + code
//!   bytes on a processor,
//! * [`synthesize_behavior`] — the pseudo-synthesizer: CDFG →
//!   list-schedule → ict + gate count (with a datapath/control split for
//!   sharing-aware size estimation), plus the block schedules from which
//!   concurrency tags are derived.
//!
//! # Examples
//!
//! ```
//! use slif_cdfg::lower_behavior;
//! use slif_techlib::{compile_behavior, synthesize_behavior, TechnologyLibrary};
//!
//! let rs = slif_speclang::parse_and_resolve(
//!     "system T;\nvar a : int<8>[64];\nproc P() { for i in 0 .. 63 { a[i] = i * 2; } }",
//! )?;
//! let g = lower_behavior(&rs, 0);
//! let lib = TechnologyLibrary::proc_asic();
//! let sw = compile_behavior(&g, &lib.processors[0]);
//! let hw = synthesize_behavior(&g, &lib.asics[0]);
//! assert!(hw.weights.ict < sw.ict); // hardware wins on the loop
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod library;
mod models;
mod synth;

pub use compile::compile_behavior;
pub use library::TechnologyLibrary;
pub use models::{AsicModel, BehaviorWeights, MemoryModel, ProcessorModel, VariableWeights};
pub use synth::{synthesize_behavior, SynthesisResult};
