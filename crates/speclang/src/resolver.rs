//! Name resolution and semantic checking.
//!
//! Turns a parsed [`Spec`] into a [`ResolvedSpec`]: every name bound,
//! constants evaluated, call signatures checked, and the lightweight type
//! rules enforced (conditions are boolean, arithmetic is integral, array
//! indexing only on arrays, sends target processes, returns only in
//! functions). Later passes — SLIF construction, CDFG lowering,
//! profiling — can then walk the AST without re-validating.

use crate::ast::{
    BehaviorDecl, BehaviorKind, BinOp, Direction, Expr, LValue, Spec, Stmt, Type, UnOp,
};
use crate::diag::{codes, Diagnostic, SpecError};
use crate::span::Span;
use std::collections::HashMap;

/// Builtin functions available in expressions.
pub const BUILTINS: &[(&str, usize)] = &[("min", 2), ("max", 2), ("abs", 1)];

/// What a top-level name refers to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GlobalSymbol {
    /// An external port (index into `spec.ports`).
    Port(usize),
    /// A system-level variable (index into `spec.vars`).
    Var(usize),
    /// A named constant with its evaluated value.
    Const(i64),
    /// A behavior (index into `spec.behaviors`).
    Behavior(usize),
}

/// What a behavior-local name refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocalSymbol {
    /// A formal parameter (index into the behavior's `params`).
    Param(usize),
    /// A local variable (index into the behavior's `locals`).
    Local(usize),
}

/// A fully resolved specification.
#[derive(Debug, Clone)]
pub struct ResolvedSpec {
    spec: Spec,
    globals: HashMap<String, GlobalSymbol>,
    locals: Vec<HashMap<String, LocalSymbol>>,
}

impl ResolvedSpec {
    /// The underlying AST.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Consumes the resolution, returning the AST.
    pub fn into_spec(self) -> Spec {
        self.spec
    }

    /// Resolves a top-level name.
    pub fn global(&self, name: &str) -> Option<GlobalSymbol> {
        self.globals.get(name).copied()
    }

    /// Resolves a name inside behavior `b` (params and locals only; loop
    /// variables are scoped to their loops and handled by tree walkers).
    pub fn local(&self, behavior: usize, name: &str) -> Option<LocalSymbol> {
        self.locals.get(behavior)?.get(name).copied()
    }

    /// Resolves a name inside behavior `b`, falling back to globals —
    /// the language's shadowing-free lookup.
    pub fn lookup(&self, behavior: usize, name: &str) -> Option<Symbol> {
        if let Some(l) = self.local(behavior, name) {
            return Some(Symbol::Local(l));
        }
        self.global(name).map(Symbol::Global)
    }

    /// Evaluates a constant expression (integer literals, named constants,
    /// arithmetic).
    ///
    /// # Errors
    ///
    /// A [`Diagnostic`] if the expression is not compile-time constant.
    pub fn eval_const(&self, expr: &Expr) -> Result<i64, Diagnostic> {
        eval_const_expr(expr, &self.globals)
    }

    /// The type of a resolved scalar name inside a behavior, if the name
    /// denotes a typed object (port, variable, param, or local).
    pub fn type_of(&self, behavior: usize, name: &str) -> Option<Type> {
        match self.lookup(behavior, name)? {
            Symbol::Local(LocalSymbol::Param(i)) => {
                Some(self.spec.behaviors[behavior].params[i].ty)
            }
            Symbol::Local(LocalSymbol::Local(i)) => {
                Some(self.spec.behaviors[behavior].locals[i].ty)
            }
            Symbol::Global(GlobalSymbol::Port(i)) => Some(self.spec.ports[i].ty),
            Symbol::Global(GlobalSymbol::Var(i)) => Some(self.spec.vars[i].ty),
            Symbol::Global(GlobalSymbol::Const(_)) => Some(Type::Int(64)),
            Symbol::Global(GlobalSymbol::Behavior(_)) => None,
        }
    }
}

/// A resolved name: behavior-local or global.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Symbol {
    /// A parameter or local of the enclosing behavior.
    Local(LocalSymbol),
    /// A top-level object.
    Global(GlobalSymbol),
}

/// Resolves and checks a parsed spec.
///
/// # Errors
///
/// A [`SpecError`] batching every diagnostic found.
///
/// # Examples
///
/// ```
/// let spec = slif_speclang::parse(
///     "system T;\nvar x : int<8>;\nprocess Main { x = x + 1; }",
/// )?;
/// let resolved = slif_speclang::resolve(spec)?;
/// assert!(resolved.global("x").is_some());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn resolve(spec: Spec) -> Result<ResolvedSpec, SpecError> {
    try_resolve(spec).map_err(|(_, e)| e)
}

/// [`resolve`], but hands the AST back alongside the error so callers
/// that keep the parse tree across failed resolutions (edit sessions
/// reparse against it) need not clone the spec up front.
///
/// # Errors
///
/// The unconsumed [`Spec`] paired with the [`SpecError`] that
/// [`resolve`] would have returned.
#[allow(clippy::result_large_err)]
pub fn try_resolve(spec: Spec) -> Result<ResolvedSpec, (Spec, SpecError)> {
    let mut diags = Vec::new();
    let mut globals: HashMap<String, GlobalSymbol> = HashMap::new();

    fn declare(
        globals: &mut HashMap<String, GlobalSymbol>,
        name: &str,
        sym: GlobalSymbol,
        span: Span,
        diags: &mut Vec<Diagnostic>,
    ) {
        if globals.insert(name.to_owned(), sym).is_some() {
            diags.push(Diagnostic::error(
                span,
                codes::RESOLVE_SEMANTIC,
                format!("`{name}` is declared more than once"),
            ));
        }
    }

    for (i, p) in spec.ports.iter().enumerate() {
        declare(
            &mut globals,
            &p.name,
            GlobalSymbol::Port(i),
            p.span,
            &mut diags,
        );
    }
    for (i, v) in spec.vars.iter().enumerate() {
        declare(
            &mut globals,
            &v.name,
            GlobalSymbol::Var(i),
            v.span,
            &mut diags,
        );
    }
    for (i, b) in spec.behaviors.iter().enumerate() {
        declare(
            &mut globals,
            &b.name,
            GlobalSymbol::Behavior(i),
            b.span,
            &mut diags,
        );
    }
    // Constants: evaluated in declaration order so later consts may use
    // earlier ones.
    for c in &spec.consts {
        match eval_const_expr(&c.value, &globals) {
            Ok(v) => declare(
                &mut globals,
                &c.name,
                GlobalSymbol::Const(v),
                c.span,
                &mut diags,
            ),
            Err(d) => diags.push(d),
        }
    }

    // Per-behavior local tables.
    let mut locals = Vec::with_capacity(spec.behaviors.len());
    for b in &spec.behaviors {
        let mut table: HashMap<String, LocalSymbol> = HashMap::new();
        for (i, p) in b.params.iter().enumerate() {
            if globals.contains_key(&p.name) {
                diags.push(Diagnostic::error(
                    p.span,
                    codes::RESOLVE_SEMANTIC,
                    format!("parameter `{}` shadows a top-level object", p.name),
                ));
            }
            if table
                .insert(p.name.clone(), LocalSymbol::Param(i))
                .is_some()
            {
                diags.push(Diagnostic::error(
                    p.span,
                    codes::RESOLVE_SEMANTIC,
                    format!("parameter `{}` is declared more than once", p.name),
                ));
            }
        }
        for (i, l) in b.locals.iter().enumerate() {
            if globals.contains_key(&l.name) {
                diags.push(Diagnostic::error(
                    l.span,
                    codes::RESOLVE_SEMANTIC,
                    format!("local `{}` shadows a top-level object", l.name),
                ));
            }
            if table
                .insert(l.name.clone(), LocalSymbol::Local(i))
                .is_some()
            {
                diags.push(Diagnostic::error(
                    l.span,
                    codes::RESOLVE_SEMANTIC,
                    format!("local `{}` is declared more than once", l.name),
                ));
            }
        }
        locals.push(table);
    }

    let resolved = ResolvedSpec {
        spec,
        globals,
        locals,
    };

    // Check bodies.
    for (bi, b) in resolved.spec.behaviors.iter().enumerate() {
        let mut checker = Checker {
            rs: &resolved,
            behavior: bi,
            decl: b,
            loop_vars: Vec::new(),
            diags: &mut diags,
        };
        checker.check_body(&b.body);
    }

    if diags.is_empty() {
        Ok(resolved)
    } else {
        diags.sort_by_key(|d| (d.span().line, d.span().col));
        Err((resolved.spec, SpecError::batch(diags)))
    }
}

struct Checker<'a> {
    rs: &'a ResolvedSpec,
    behavior: usize,
    decl: &'a BehaviorDecl,
    loop_vars: Vec<String>,
    diags: &'a mut Vec<Diagnostic>,
}

/// The checker's notion of an expression type.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Ty {
    Int,
    Bool,
    /// Produced after an error; silences cascading diagnostics.
    Unknown,
}

impl<'a> Checker<'a> {
    /// A semantic rule violation ([`codes::RESOLVE_SEMANTIC`]).
    fn err(&mut self, span: Span, message: impl Into<String>) {
        self.diags
            .push(Diagnostic::error(span, codes::RESOLVE_SEMANTIC, message));
    }

    /// A name that is undefined or used in the wrong role
    /// ([`codes::RESOLVE_NAME`]).
    fn err_name(&mut self, span: Span, message: impl Into<String>) {
        self.diags
            .push(Diagnostic::error(span, codes::RESOLVE_NAME, message));
    }

    fn check_body(&mut self, body: &[Stmt]) {
        for stmt in body {
            self.check_stmt(stmt);
        }
    }

    fn check_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Assign { lhs, value, .. } => {
                self.check_lvalue(lhs, false);
                // Scalar booleans take boolean values; everything else
                // (ints, array elements, ports) takes integers.
                let want = match lhs {
                    LValue::Name { name, .. }
                        if self.rs.type_of(self.behavior, name) == Some(crate::ast::Type::Bool) =>
                    {
                        Ty::Bool
                    }
                    _ => Ty::Int,
                };
                self.check_expr_is(value, want);
            }
            Stmt::Call { callee, args, span } => {
                match self.rs.global(callee) {
                    Some(GlobalSymbol::Behavior(ti)) => {
                        let target = &self.rs.spec.behaviors[ti];
                        match target.kind {
                            BehaviorKind::Process => self.err_name(
                                *span,
                                format!("cannot call process `{callee}`; use `send`"),
                            ),
                            BehaviorKind::Procedure | BehaviorKind::Function { .. } => {
                                self.check_call_args(callee, &target.params.len(), args, span);
                            }
                        }
                    }
                    Some(_) => self.err_name(*span, format!("`{callee}` is not callable")),
                    None => self.err_name(*span, format!("unknown behavior `{callee}`")),
                }
                for a in args {
                    self.check_expr_is(a, Ty::Int);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                self.check_expr_is(cond, Ty::Bool);
                self.check_body(then_body);
                self.check_body(else_body);
            }
            Stmt::For {
                var,
                lo,
                hi,
                body,
                span,
            } => {
                if self.rs.lookup(self.behavior, var).is_some() {
                    self.err(
                        *span,
                        format!("loop variable `{var}` shadows another object"),
                    );
                }
                for bound in [lo, hi] {
                    if self.rs.eval_const(bound).is_err() {
                        self.err(
                            bound.span(),
                            "loop bounds must be compile-time constants".to_owned(),
                        );
                    }
                }
                if let (Ok(l), Ok(h)) = (self.rs.eval_const(lo), self.rs.eval_const(hi)) {
                    if l > h {
                        self.err(*span, format!("empty loop range {l} .. {h}"));
                    }
                }
                self.loop_vars.push(var.clone());
                self.check_body(body);
                self.loop_vars.pop();
            }
            Stmt::While {
                cond,
                iters,
                body,
                span,
            } => {
                self.check_expr_is(cond, Ty::Bool);
                if let Some(i) = iters {
                    if *i < 0.0 || !i.is_finite() {
                        self.err(*span, "iteration count must be non-negative".to_owned());
                    }
                }
                self.check_body(body);
            }
            Stmt::Fork { body, span } => {
                for s in body {
                    if !matches!(s, Stmt::Call { .. }) {
                        self.err(
                            s.span(),
                            "fork bodies may contain only procedure calls".to_owned(),
                        );
                    }
                }
                if body.is_empty() {
                    self.err(*span, "empty fork".to_owned());
                }
                self.check_body(body);
            }
            Stmt::Send {
                target,
                value,
                span,
            } => {
                match self.rs.global(target) {
                    Some(GlobalSymbol::Behavior(ti))
                        if self.rs.spec.behaviors[ti].kind == BehaviorKind::Process => {}
                    Some(GlobalSymbol::Behavior(_)) => {
                        self.err(*span, format!("send target `{target}` is not a process"));
                    }
                    _ => self.err_name(*span, format!("unknown process `{target}`")),
                }
                self.check_expr_is(value, Ty::Int);
            }
            Stmt::Receive { lhs, .. } => {
                self.check_lvalue(lhs, true);
            }
            Stmt::Return { value, span } => match (&self.decl.kind, value) {
                (BehaviorKind::Function { .. }, Some(v)) => self.check_expr_is(v, Ty::Int),
                (BehaviorKind::Function { .. }, None) => {
                    self.err(*span, "function return needs a value".to_owned());
                }
                (_, Some(_)) => {
                    self.err(*span, "only functions return values".to_owned());
                }
                (_, None) => {}
            },
            Stmt::Wait { .. } => {}
        }
    }

    /// `receiving` relaxes the out-port rule (receive lands in storage only).
    fn check_lvalue(&mut self, lhs: &LValue, receiving: bool) {
        let name = lhs.name().to_owned();
        let span = lhs.span();
        if self.loop_vars.contains(&name) {
            self.err(span, format!("cannot assign to loop variable `{name}`"));
            return;
        }
        let sym = self.rs.lookup(self.behavior, &name);
        let ty = match sym {
            Some(Symbol::Local(LocalSymbol::Param(i))) => Some(self.decl.params[i].ty),
            Some(Symbol::Local(LocalSymbol::Local(i))) => Some(self.decl.locals[i].ty),
            Some(Symbol::Global(GlobalSymbol::Var(i))) => Some(self.rs.spec.vars[i].ty),
            Some(Symbol::Global(GlobalSymbol::Port(i))) => {
                let port = &self.rs.spec.ports[i];
                if receiving {
                    self.err(span, "cannot receive into a port".to_owned());
                } else if port.direction == Direction::In {
                    self.err(span, format!("cannot write input port `{name}`"));
                }
                Some(port.ty)
            }
            Some(Symbol::Global(GlobalSymbol::Const(_))) => {
                self.err_name(span, format!("cannot assign to constant `{name}`"));
                None
            }
            Some(Symbol::Global(GlobalSymbol::Behavior(_))) => {
                self.err_name(span, format!("cannot assign to behavior `{name}`"));
                None
            }
            None => {
                self.err_name(span, format!("unknown name `{name}`"));
                None
            }
        };
        match lhs {
            LValue::Index { index, .. } => {
                if let Some(t) = ty {
                    if !t.is_array() {
                        self.err_name(span, format!("`{name}` is not an array"));
                    }
                }
                self.check_expr_is(index, Ty::Int);
            }
            LValue::Name { .. } => {
                if let Some(t) = ty {
                    if t.is_array() {
                        self.err(span, format!("array `{name}` needs an index"));
                    }
                }
            }
        }
    }

    fn check_call_args(&mut self, callee: &str, expected: &usize, args: &[Expr], span: &Span) {
        if args.len() != *expected {
            self.err(
                *span,
                format!(
                    "`{callee}` takes {expected} argument(s), {} given",
                    args.len()
                ),
            );
        }
    }

    fn check_expr_is(&mut self, expr: &Expr, want: Ty) {
        let got = self.infer(expr);
        if got != Ty::Unknown && got != want {
            self.err(
                expr.span(),
                format!(
                    "expected {} expression",
                    if want == Ty::Bool {
                        "boolean"
                    } else {
                        "integer"
                    }
                ),
            );
        }
    }

    fn infer(&mut self, expr: &Expr) -> Ty {
        match expr {
            Expr::Int { .. } => Ty::Int,
            Expr::Bool { .. } => Ty::Bool,
            Expr::Name { name, span } => {
                if self.loop_vars.contains(name) {
                    return Ty::Int;
                }
                match self.rs.lookup(self.behavior, name) {
                    Some(Symbol::Global(GlobalSymbol::Port(i))) => {
                        let port = &self.rs.spec.ports[i];
                        if port.direction == Direction::Out {
                            self.err(*span, format!("cannot read output port `{name}`"));
                        }
                        ty_of(port.ty)
                    }
                    Some(Symbol::Global(GlobalSymbol::Var(i))) => {
                        let t = self.rs.spec.vars[i].ty;
                        if t.is_array() {
                            self.err(*span, format!("array `{name}` needs an index"));
                            Ty::Unknown
                        } else {
                            ty_of(t)
                        }
                    }
                    Some(Symbol::Global(GlobalSymbol::Const(_))) => Ty::Int,
                    Some(Symbol::Global(GlobalSymbol::Behavior(_))) => {
                        self.err_name(*span, format!("behavior `{name}` used as a value"));
                        Ty::Unknown
                    }
                    Some(Symbol::Local(LocalSymbol::Param(i))) => ty_of(self.decl.params[i].ty),
                    Some(Symbol::Local(LocalSymbol::Local(i))) => {
                        let t = self.decl.locals[i].ty;
                        if t.is_array() {
                            self.err(*span, format!("array `{name}` needs an index"));
                            Ty::Unknown
                        } else {
                            ty_of(t)
                        }
                    }
                    None => {
                        self.err_name(*span, format!("unknown name `{name}`"));
                        Ty::Unknown
                    }
                }
            }
            Expr::Index { name, index, span } => {
                self.check_expr_is(index, Ty::Int);
                let ty = if self.loop_vars.contains(name) {
                    None
                } else {
                    match self.rs.lookup(self.behavior, name) {
                        Some(Symbol::Global(GlobalSymbol::Var(i))) => Some(self.rs.spec.vars[i].ty),
                        Some(Symbol::Local(LocalSymbol::Local(i))) => Some(self.decl.locals[i].ty),
                        Some(_) => None,
                        None => {
                            self.err_name(*span, format!("unknown name `{name}`"));
                            return Ty::Unknown;
                        }
                    }
                };
                match ty {
                    Some(t) if t.is_array() => Ty::Int,
                    Some(_) | None => {
                        self.err_name(*span, format!("`{name}` is not an array"));
                        Ty::Unknown
                    }
                }
            }
            Expr::Call { callee, args, span } => {
                if let Some(&(_, arity)) = BUILTINS.iter().find(|(n, _)| n == callee) {
                    if args.len() != arity {
                        self.err(
                            *span,
                            format!("builtin `{callee}` takes {arity} argument(s)"),
                        );
                    }
                    for a in args {
                        self.check_expr_is(a, Ty::Int);
                    }
                    return Ty::Int;
                }
                match self.rs.global(callee) {
                    Some(GlobalSymbol::Behavior(ti)) => {
                        let target = &self.rs.spec.behaviors[ti];
                        match target.kind {
                            BehaviorKind::Function { .. } => {
                                self.check_call_args(callee, &target.params.len(), args, span);
                                for a in args {
                                    self.check_expr_is(a, Ty::Int);
                                }
                                Ty::Int
                            }
                            _ => {
                                self.err(*span, format!("`{callee}` does not return a value"));
                                Ty::Unknown
                            }
                        }
                    }
                    _ => {
                        self.err_name(*span, format!("unknown function `{callee}`"));
                        Ty::Unknown
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                if op.is_logical() {
                    self.check_expr_is(lhs, Ty::Bool);
                    self.check_expr_is(rhs, Ty::Bool);
                    Ty::Bool
                } else if op.is_comparison() {
                    self.check_expr_is(lhs, Ty::Int);
                    self.check_expr_is(rhs, Ty::Int);
                    Ty::Bool
                } else {
                    self.check_expr_is(lhs, Ty::Int);
                    self.check_expr_is(rhs, Ty::Int);
                    Ty::Int
                }
            }
            Expr::Unary { op, operand, .. } => match op {
                UnOp::Neg => {
                    self.check_expr_is(operand, Ty::Int);
                    Ty::Int
                }
                UnOp::Not => {
                    self.check_expr_is(operand, Ty::Bool);
                    Ty::Bool
                }
            },
        }
    }
}

fn ty_of(t: Type) -> Ty {
    match t {
        Type::Bool => Ty::Bool,
        Type::Int(_) | Type::Array { .. } => Ty::Int,
    }
}

fn eval_const_expr(
    expr: &Expr,
    globals: &HashMap<String, GlobalSymbol>,
) -> Result<i64, Diagnostic> {
    match expr {
        Expr::Int { value, span } => i64::try_from(*value)
            .map_err(|_| Diagnostic::error(*span, codes::RESOLVE_CONST, "constant out of range".to_owned())),
        Expr::Name { name, span } => match globals.get(name) {
            Some(GlobalSymbol::Const(v)) => Ok(*v),
            _ => Err(Diagnostic::error(
                *span,
                codes::RESOLVE_CONST,
                format!("`{name}` is not a constant"),
            )),
        },
        Expr::Binary { op, lhs, rhs, span } => {
            let l = eval_const_expr(lhs, globals)?;
            let r = eval_const_expr(rhs, globals)?;
            let out = match op {
                BinOp::Add => l.checked_add(r),
                BinOp::Sub => l.checked_sub(r),
                BinOp::Mul => l.checked_mul(r),
                BinOp::Div => {
                    if r == 0 {
                        return Err(Diagnostic::error(*span, codes::RESOLVE_CONST, "division by zero".to_owned()));
                    }
                    l.checked_div(r)
                }
                BinOp::Rem => {
                    if r == 0 {
                        return Err(Diagnostic::error(*span, codes::RESOLVE_CONST, "division by zero".to_owned()));
                    }
                    l.checked_rem(r)
                }
                _ => None,
            };
            out.ok_or_else(|| Diagnostic::error(*span, codes::RESOLVE_CONST, "constant expression overflow".to_owned()))
        }
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            span,
        } => eval_const_expr(operand, globals)?
            .checked_neg()
            .ok_or_else(|| Diagnostic::error(*span, codes::RESOLVE_CONST, "constant expression overflow".to_owned())),
        other => Err(Diagnostic::error(
            other.span(),
            codes::RESOLVE_CONST,
            "expression is not compile-time constant".to_owned(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn resolve_src(src: &str) -> Result<ResolvedSpec, SpecError> {
        resolve(parse(src).expect("parse"))
    }

    fn resolve_ok(src: &str) -> ResolvedSpec {
        match resolve_src(src) {
            Ok(r) => r,
            Err(e) => panic!("resolve failed: {e}"),
        }
    }

    fn first_message(src: &str) -> String {
        resolve_src(src).unwrap_err().diagnostics()[0]
            .message()
            .to_owned()
    }

    #[test]
    fn resolves_clean_spec() {
        let r = resolve_ok(
            "system T;\n\
             const N = 4;\n\
             port in1 : in int<8>;\n\
             var x : int<8>;\n\
             var a : int<8>[16];\n\
             func F(v : int<8>) -> int<8> { return v + 1; }\n\
             proc P(v : int<8>) { var t : int<8>; t = F(v); a[t] = in1; }\n\
             process Main { x = in1; call P(x); for i in 1 .. N { a[i] = i; } }\n",
        );
        assert_eq!(r.global("N"), Some(GlobalSymbol::Const(4)));
        assert!(matches!(r.global("Main"), Some(GlobalSymbol::Behavior(_))));
        assert!(matches!(r.global("in1"), Some(GlobalSymbol::Port(0))));
        let pi = match r.global("P") {
            Some(GlobalSymbol::Behavior(i)) => i,
            other => panic!("{other:?}"),
        };
        assert_eq!(r.local(pi, "v"), Some(LocalSymbol::Param(0)));
        assert_eq!(r.local(pi, "t"), Some(LocalSymbol::Local(0)));
        assert_eq!(r.local(pi, "x"), None);
        assert!(matches!(
            r.lookup(pi, "x"),
            Some(Symbol::Global(GlobalSymbol::Var(0)))
        ));
    }

    #[test]
    fn const_arithmetic_and_ordering() {
        let r = resolve_ok("system T; const A = 3; const B = A * 2 + 1;");
        assert_eq!(r.global("B"), Some(GlobalSymbol::Const(7)));
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(
            first_message("system T; var x : int<8>; var x : int<8>;").contains("more than once")
        );
        assert!(first_message("system T; var x : int<8>; proc x() { }").contains("more than once"));
    }

    #[test]
    fn shadowing_rejected() {
        assert!(
            first_message("system T; var x : int<8>; proc P(x : int<8>) { }").contains("shadows")
        );
        assert!(
            first_message("system T; var x : int<8>; proc P() { var x : int<8>; }")
                .contains("shadows")
        );
    }

    #[test]
    fn unknown_names_rejected() {
        assert!(first_message("system T; proc P() { y = 1; }").contains("unknown name"));
        assert!(first_message("system T; proc P() { call Q(); }").contains("unknown behavior"));
    }

    #[test]
    fn port_direction_rules() {
        assert!(first_message(
            "system T; port o : out int<8>; var x : int<8>; proc P() { x = o; }"
        )
        .contains("cannot read output port"));
        assert!(
            first_message("system T; port i : in int<8>; proc P() { i = 1; }")
                .contains("cannot write input port")
        );
        // Inout works both ways.
        resolve_ok(
            "system T; port io : inout int<8>; var x : int<8>; proc P() { x = io; io = x; }",
        );
    }

    #[test]
    fn array_usage_rules() {
        assert!(
            first_message("system T; var a : int<8>[4]; proc P() { a = 1; }")
                .contains("needs an index")
        );
        assert!(
            first_message("system T; var x : int<8>; proc P() { x[0] = 1; }")
                .contains("not an array")
        );
        assert!(
            first_message("system T; var x : int<8>; var y : int<8>; proc P() { y = x[2]; }")
                .contains("not an array")
        );
    }

    #[test]
    fn call_rules() {
        assert!(
            first_message("system T; proc P(a : int<8>) { } process M { call P(); }")
                .contains("takes 1 argument")
        );
        assert!(
            first_message("system T; process W { wait 1; } process M { call W(); }")
                .contains("use `send`")
        );
        assert!(
            first_message("system T; var x : int<8>; proc P() { } proc Q() { x = P(); }")
                .contains("does not return")
        );
    }

    #[test]
    fn builtin_arity_checked() {
        assert!(
            first_message("system T; var x : int<8>; proc P() { x = min(1); }")
                .contains("takes 2 argument")
        );
        resolve_ok("system T; var x : int<8>; proc P() { x = abs(0 - x); }");
    }

    #[test]
    fn send_and_receive_rules() {
        assert!(
            first_message("system T; proc P() { } process M { send P 1; }")
                .contains("not a process")
        );
        assert!(first_message("system T; process M { send Nope 1; }").contains("unknown process"));
        resolve_ok("system T; var m : int<8>; process A { send B m; } process B { receive m; }");
    }

    #[test]
    fn return_rules() {
        assert!(first_message("system T; proc P() { return 3; }")
            .contains("only functions return values"));
        assert!(first_message("system T; func F() -> int<8> { return; }").contains("needs a value"));
        resolve_ok("system T; proc P() { return; }");
    }

    #[test]
    fn loop_rules() {
        assert!(first_message(
            "system T; var n : int<8>; var a : int<8>[4]; proc P() { for i in 1 .. n { a[i] = 1; } }"
        )
        .contains("compile-time"));
        assert!(first_message(
            "system T; var a : int<8>[4]; proc P() { for i in 5 .. 2 { a[i] = 1; } }"
        )
        .contains("empty loop range"));
        assert!(first_message(
            "system T; var i : int<8>; var a : int<8>[4]; proc P() { for i in 1 .. 2 { a[i] = 1; } }"
        )
        .contains("shadows"));
        assert!(first_message(
            "system T; var a : int<8>[4]; proc P() { for i in 1 .. 2 { i = 3; } }"
        )
        .contains("loop variable"));
    }

    #[test]
    fn fork_allows_only_calls() {
        assert!(first_message(
            "system T; var x : int<8>; proc A() { } process M { fork { x = 1; } }"
        )
        .contains("only procedure calls"));
        assert!(first_message("system T; process M { fork { } }").contains("empty fork"));
        resolve_ok(
            "system T; proc A() { } proc B() { } process M { fork { call A(); call B(); } }",
        );
    }

    #[test]
    fn condition_typing() {
        assert!(
            first_message("system T; var x : int<8>; proc P() { if x { x = 1; } }")
                .contains("expected boolean")
        );
        assert!(
            first_message("system T; var b : bool; var x : int<8>; proc P() { x = b + 1; }")
                .contains("expected integer")
        );
        resolve_ok(
            "system T; var b : bool; var x : int<8>; proc P() { if b and x > 0 { x = 1; } }",
        );
    }

    #[test]
    fn diagnostics_sorted_by_location() {
        let err = resolve_src("system T;\nproc P() { y = 1; }\nproc Q() { z = 1; }\n").unwrap_err();
        let lines: Vec<u32> = err.diagnostics().iter().map(|d| d.span().line).collect();
        let mut sorted = lines.clone();
        sorted.sort();
        assert_eq!(lines, sorted);
        assert!(err.diagnostics().len() >= 2);
    }

    #[test]
    fn type_of_queries() {
        let r = resolve_ok(
            "system T; port i : in int<16>; var a : int<8>[4]; proc P(v : int<4>) { var t : bool; t = true; a[v] = i; }",
        );
        let pi = match r.global("P") {
            Some(GlobalSymbol::Behavior(i)) => i,
            _ => panic!(),
        };
        assert_eq!(r.type_of(pi, "i"), Some(Type::Int(16)));
        assert_eq!(r.type_of(pi, "v"), Some(Type::Int(4)));
        assert_eq!(r.type_of(pi, "t"), Some(Type::Bool));
        assert_eq!(
            r.type_of(pi, "a"),
            Some(Type::Array {
                len: 4,
                elem_bits: 8
            })
        );
        assert_eq!(r.type_of(pi, "nope"), None);
    }

    #[test]
    fn eval_const_rejects_runtime_expressions() {
        let r = resolve_ok("system T; var x : int<8>; proc P() { x = 1; }");
        let e = parse("system D; const Z = 1;").unwrap().consts[0]
            .value
            .clone();
        assert_eq!(r.eval_const(&e).unwrap(), 1);
        let runtime = Expr::Name {
            name: "x".into(),
            span: Span::dummy(),
        };
        assert!(r.eval_const(&runtime).is_err());
    }
    #[test]
    fn resolver_diagnostics_carry_stage_codes() {
        fn first_code(src: &str) -> &'static str {
            resolve_src(src).unwrap_err().diagnostics()[0].code()
        }
        // Undefined or wrong-role name.
        assert_eq!(first_code("system T; proc P() { y = 1; }"), "R001");
        assert_eq!(
            first_code("system T; process M { call Nope(1); }"),
            "R001"
        );
        // Constant evaluation failure.
        assert_eq!(
            first_code("system T; const C = 1 / 0; var a : int<8>[4]; proc P() { a[C] = 1; }"),
            "R002"
        );
        // Semantic rule violation.
        assert_eq!(
            first_code("system T; var x : int<8>; var x : int<8>; proc P() { x = 1; }"),
            "R003"
        );
        assert_eq!(first_code("system T; process M { fork { } }"), "R003");
    }
}
