//! Diagnostics for lexing, parsing, and resolution.
//!
//! Every problem found while processing a specification is a
//! [`Diagnostic`]: a source [`Span`], a [`Severity`], a machine-readable
//! code (stable across releases, e.g. `P001`), and a human-readable
//! message. Stages never stop at the first problem — the lexer skips
//! malformed characters, the parser synchronizes at statement and
//! declaration boundaries, and the resolver sweeps the whole spec — so a
//! single pass reports *all* diagnostics, batched into a [`SpecError`].

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory: processing produced a usable result anyway.
    Warning,
    /// The specification is invalid; the stage's result is unusable or
    /// partial.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Stable machine-readable diagnostic codes.
///
/// `L...` are lexical, `P...` syntactic, `R...` semantic (resolution).
/// Codes are part of the public interface: tools may match on them, so
/// existing codes never change meaning.
pub mod codes {
    /// Unknown or unexpected character in the input.
    pub const LEX_UNEXPECTED_CHAR: &str = "L001";
    /// Malformed integer, hex, or float literal.
    pub const LEX_BAD_LITERAL: &str = "L002";
    /// An incomplete operator such as a lone `!` or `.`.
    pub const LEX_BAD_OPERATOR: &str = "L003";
    /// Generic syntax error (unexpected token).
    pub const PARSE_SYNTAX: &str = "P001";
    /// A declaration- or statement-level constraint violation (array
    /// port, zero-width integer, out-of-range probability, ...).
    pub const PARSE_CONSTRAINT: &str = "P002";
    /// Error recovery gave up (diagnostic limit reached).
    pub const PARSE_TOO_MANY_ERRORS: &str = "P003";
    /// A [`ParseLimits`](crate::ParseLimits) resource cap was exceeded:
    /// the input is too many bytes or tokens, or nests too deeply. The
    /// parser refuses (or truncates) instead of grinding on pathological
    /// input.
    pub const PARSE_LIMIT: &str = "P004";
    /// A name is not defined, or used in the wrong role.
    pub const RESOLVE_NAME: &str = "R001";
    /// A constant expression could not be evaluated.
    pub const RESOLVE_CONST: &str = "R002";
    /// A semantic rule violation (duplicate name, recursion, bad send
    /// target, ...).
    pub const RESOLVE_SEMANTIC: &str = "R003";
    /// A malformed wire-format record or segment: unparseable line,
    /// torn frame, bad magic, checksum mismatch (the `slif-formats`
    /// interchange reader).
    pub const WIRE_MALFORMED: &str = "W001";
    /// An unknown wire-format section or extension segment was
    /// tolerated and skipped.
    pub const WIRE_UNKNOWN_SECTION: &str = "W002";
    /// A wire-format resource cap (line bytes, segment bytes, nesting
    /// depth, record count) was exceeded; the reader refused instead of
    /// allocating from a hostile declaration.
    pub const WIRE_LIMIT: &str = "W003";
    /// The decoded design does not hash to the content digest the wire
    /// file declared — corruption survived the per-record checks, so
    /// the whole result is untrustworthy.
    pub const WIRE_CONTENT_MISMATCH: &str = "W004";
    /// Catch-all for diagnostics created through [`super::Diagnostic::new`].
    pub const GENERIC: &str = "E000";
}

/// A diagnostic produced while processing a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    span: Span,
    message: String,
    severity: Severity,
    code: &'static str,
}

impl Diagnostic {
    /// Creates an error diagnostic with the generic code ([`codes::GENERIC`]).
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Self::error(span, codes::GENERIC, message)
    }

    /// Creates an error diagnostic with a machine-readable code.
    pub fn error(span: Span, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
            severity: Severity::Error,
            code,
        }
    }

    /// Creates a warning diagnostic with a machine-readable code.
    pub fn warning(span: Span, code: &'static str, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
            severity: Severity::Warning,
            code,
        }
    }

    /// Replaces the machine-readable code, keeping everything else.
    pub fn with_code(mut self, code: &'static str) -> Self {
        self.code = code;
        self
    }

    /// Where the problem is.
    pub fn span(&self) -> Span {
        self.span
    }

    /// What the problem is.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// How serious the problem is.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The stable machine-readable code (see [`codes`]).
    pub fn code(&self) -> &'static str {
        self.code
    }

    /// `true` for [`Severity::Error`] diagnostics.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}[{}]: {}",
            self.span, self.severity, self.code, self.message
        )
    }
}

impl Error for Diagnostic {}

/// Error carrying one or more diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    diagnostics: Vec<Diagnostic>,
}

impl SpecError {
    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        Self {
            diagnostics: vec![diag],
        }
    }

    /// Wraps a batch of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diagnostics` is empty — an error must explain itself.
    pub fn batch(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(!diagnostics.is_empty(), "SpecError needs a diagnostic");
        Self { diagnostics }
    }

    /// The diagnostics, in source order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }

    /// Only the error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// Only the warning-severity diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_error())
    }

    /// `true` when at least one diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for SpecError {}

impl From<Diagnostic> for SpecError {
    fn from(value: Diagnostic) -> Self {
        SpecError::single(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_location_severity_code_and_message() {
        let d = Diagnostic::new(Span::new(0, 1, 4, 9), "unexpected `}`");
        assert_eq!(d.to_string(), "4:9: error[E000]: unexpected `}`");
        let w = Diagnostic::warning(Span::new(0, 1, 2, 3), codes::PARSE_CONSTRAINT, "odd");
        assert_eq!(w.to_string(), "2:3: warning[P002]: odd");
    }

    #[test]
    fn severity_and_code_accessors() {
        let d = Diagnostic::error(Span::dummy(), codes::PARSE_SYNTAX, "boom");
        assert_eq!(d.severity(), Severity::Error);
        assert_eq!(d.code(), "P001");
        assert!(d.is_error());
        let w = Diagnostic::warning(Span::dummy(), codes::GENERIC, "hmm");
        assert!(!w.is_error());
        assert_eq!(w.severity().to_string(), "warning");
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn batch_joins_with_newlines() {
        let e = SpecError::batch(vec![
            Diagnostic::new(Span::dummy(), "first"),
            Diagnostic::new(Span::dummy(), "second"),
        ]);
        assert_eq!(
            e.to_string(),
            "1:1: error[E000]: first\n1:1: error[E000]: second"
        );
        assert_eq!(e.diagnostics().len(), 2);
    }

    #[test]
    fn error_and_warning_filters() {
        let e = SpecError::batch(vec![
            Diagnostic::error(Span::dummy(), codes::PARSE_SYNTAX, "bad"),
            Diagnostic::warning(Span::dummy(), codes::PARSE_CONSTRAINT, "meh"),
        ]);
        assert_eq!(e.errors().count(), 1);
        assert_eq!(e.warnings().count(), 1);
        assert!(e.has_errors());
        let w = SpecError::batch(vec![Diagnostic::warning(
            Span::dummy(),
            codes::GENERIC,
            "only a warning",
        )]);
        assert!(!w.has_errors());
    }

    #[test]
    #[should_panic(expected = "needs a diagnostic")]
    fn empty_batch_panics() {
        let _ = SpecError::batch(vec![]);
    }
}
