//! Diagnostics for lexing, parsing, and resolution.

use crate::span::Span;
use std::error::Error;
use std::fmt;

/// A diagnostic produced while processing a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    span: Span,
    message: String,
}

impl Diagnostic {
    /// Creates a diagnostic at the given location.
    pub fn new(span: Span, message: impl Into<String>) -> Self {
        Self {
            span,
            message: message.into(),
        }
    }

    /// Where the problem is.
    pub fn span(&self) -> Span {
        self.span
    }

    /// What the problem is.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)
    }
}

impl Error for Diagnostic {}

/// Error carrying one or more diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    diagnostics: Vec<Diagnostic>,
}

impl SpecError {
    /// Wraps a single diagnostic.
    pub fn single(diag: Diagnostic) -> Self {
        Self {
            diagnostics: vec![diag],
        }
    }

    /// Wraps a batch of diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if `diagnostics` is empty — an error must explain itself.
    pub fn batch(diagnostics: Vec<Diagnostic>) -> Self {
        assert!(!diagnostics.is_empty(), "SpecError needs a diagnostic");
        Self { diagnostics }
    }

    /// The diagnostics, in source order.
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl Error for SpecError {}

impl From<Diagnostic> for SpecError {
    fn from(value: Diagnostic) -> Self {
        SpecError::single(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_location_and_message() {
        let d = Diagnostic::new(Span::new(0, 1, 4, 9), "unexpected `}`");
        assert_eq!(d.to_string(), "4:9: unexpected `}`");
    }

    #[test]
    fn batch_joins_with_newlines() {
        let e = SpecError::batch(vec![
            Diagnostic::new(Span::dummy(), "first"),
            Diagnostic::new(Span::dummy(), "second"),
        ]);
        assert_eq!(e.to_string(), "1:1: first\n1:1: second");
        assert_eq!(e.diagnostics().len(), 2);
    }

    #[test]
    #[should_panic(expected = "needs a diagnostic")]
    fn empty_batch_panics() {
        let _ = SpecError::batch(vec![]);
    }
}
