//! Pretty-printer: AST → canonical source text.
//!
//! The printer's output re-parses to an AST equal to the input (modulo
//! spans), which the test suite exploits for round-trip checks.

use crate::ast::{BehaviorDecl, BehaviorKind, Expr, LValue, Spec, Stmt, VarDecl};
use std::fmt::Write as _;

/// Renders a specification as canonical source text.
pub fn pretty(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "system {};", spec.name);
    for c in &spec.consts {
        let _ = writeln!(out, "const {} = {};", c.name, expr_str(&c.value));
    }
    for p in &spec.ports {
        let _ = writeln!(out, "port {} : {} {};", p.name, p.direction, p.ty);
    }
    for v in &spec.vars {
        print_allows(&mut out, &v.allows);
        let _ = writeln!(out, "var {} : {};", v.name, v.ty);
    }
    for b in &spec.behaviors {
        let _ = writeln!(out);
        print_behavior(&mut out, b);
    }
    out
}

fn print_allows(out: &mut String, allows: &[String]) {
    if !allows.is_empty() {
        let _ = writeln!(out, "@allow({})", allows.join(", "));
    }
}

fn print_behavior(out: &mut String, b: &BehaviorDecl) {
    print_allows(out, &b.allows);
    match &b.kind {
        BehaviorKind::Process => {
            let _ = write!(out, "process {}", b.name);
        }
        BehaviorKind::Procedure => {
            let _ = write!(out, "proc {}({})", b.name, params_str(b));
        }
        BehaviorKind::Function { ret } => {
            let _ = write!(out, "func {}({}) -> {}", b.name, params_str(b), ret);
        }
    }
    let _ = writeln!(out, " {{");
    for l in &b.locals {
        print_local(out, l, 1);
    }
    for s in &b.body {
        print_stmt(out, s, 1);
    }
    let _ = writeln!(out, "}}");
}

fn params_str(b: &BehaviorDecl) -> String {
    b.params
        .iter()
        .map(|p| format!("{} : {}", p.name, p.ty))
        .collect::<Vec<_>>()
        .join(", ")
}

fn print_local(out: &mut String, v: &VarDecl, depth: usize) {
    let _ = writeln!(out, "{}var {} : {};", indent(depth), v.name, v.ty);
}

fn print_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    let pad = indent(depth);
    match stmt {
        Stmt::Assign { lhs, value, .. } => {
            let _ = writeln!(out, "{pad}{} = {};", lvalue_str(lhs), expr_str(value));
        }
        Stmt::Call { callee, args, .. } => {
            let _ = writeln!(out, "{pad}call {callee}({});", args_str(args));
        }
        Stmt::If {
            cond,
            prob,
            then_body,
            else_body,
            ..
        } => {
            let _ = write!(out, "{pad}if {}", expr_str(cond));
            if let Some(p) = prob {
                let _ = write!(out, " prob {}", float_str(*p));
            }
            let _ = writeln!(out, " {{");
            for s in then_body {
                print_stmt(out, s, depth + 1);
            }
            if else_body.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                for s in else_body {
                    print_stmt(out, s, depth + 1);
                }
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::For {
            var, lo, hi, body, ..
        } => {
            let _ = writeln!(
                out,
                "{pad}for {var} in {} .. {} {{",
                expr_str(lo),
                expr_str(hi)
            );
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::While {
            cond, iters, body, ..
        } => {
            let _ = write!(out, "{pad}while {}", expr_str(cond));
            if let Some(i) = iters {
                let _ = write!(out, " iters {}", float_str(*i));
            }
            let _ = writeln!(out, " {{");
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Fork { body, .. } => {
            let _ = writeln!(out, "{pad}fork {{");
            for s in body {
                print_stmt(out, s, depth + 1);
            }
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Send { target, value, .. } => {
            let _ = writeln!(out, "{pad}send {target} {};", expr_str(value));
        }
        Stmt::Receive { lhs, .. } => {
            let _ = writeln!(out, "{pad}receive {};", lvalue_str(lhs));
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "{pad}return {};", expr_str(v));
            }
            None => {
                let _ = writeln!(out, "{pad}return;");
            }
        },
        Stmt::Wait { amount, .. } => {
            let _ = writeln!(out, "{pad}wait {amount};");
        }
    }
}

fn lvalue_str(lhs: &LValue) -> String {
    match lhs {
        LValue::Name { name, .. } => name.clone(),
        LValue::Index { name, index, .. } => format!("{name}[{}]", expr_str(index)),
    }
}

fn args_str(args: &[Expr]) -> String {
    args.iter().map(expr_str).collect::<Vec<_>>().join(", ")
}

/// Renders an expression with full parenthesization of nested operations,
/// so precedence never needs reconstructing.
pub fn expr_str(expr: &Expr) -> String {
    match expr {
        Expr::Int { value, .. } => value.to_string(),
        Expr::Bool { value, .. } => value.to_string(),
        Expr::Name { name, .. } => name.clone(),
        Expr::Index { name, index, .. } => format!("{name}[{}]", expr_str(index)),
        Expr::Call { callee, args, .. } => format!("{callee}({})", args_str(args)),
        Expr::Binary { op, lhs, rhs, .. } => {
            format!("({} {op} {})", expr_str(lhs), expr_str(rhs))
        }
        Expr::Unary { op, operand, .. } => match op {
            crate::ast::UnOp::Neg => format!("(-{})", expr_str(operand)),
            crate::ast::UnOp::Not => format!("(not {})", expr_str(operand)),
        },
    }
}

fn float_str(v: f64) -> String {
    if v.fract() == 0.0 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// `pretty(parse(s))` must reparse to an AST equal to the original
    /// modulo spans (the property dirty-region splicing relies on), and
    /// pretty output must be a fixed point of pretty∘parse.
    fn roundtrip(src: &str) {
        let ast1 = parse(src).expect("first parse");
        let printed = pretty(&ast1);
        let ast2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(
            pretty(&ast2),
            printed,
            "pretty output must be a fixed point"
        );
        assert!(
            crate::ast::eq_modulo_spans(&ast1, &ast2),
            "reparse of pretty output must equal the original AST modulo spans:\n{printed}"
        );
    }

    #[test]
    fn corpus_roundtrips_ast_equal_modulo_spans() {
        for entry in crate::corpus::all() {
            roundtrip(entry.source);
        }
    }

    #[test]
    fn roundtrips_declarations() {
        roundtrip(
            "system T;\nconst N = 4;\nport i : in int<8>;\nport o : out int<16>;\n\
             var x : int<8>;\nvar a : int<8>[384];\n",
        );
    }

    #[test]
    fn roundtrips_statements() {
        roundtrip(
            "system T;\nvar x : int<8>;\nvar a : int<8>[128];\n\
             proc A() { }\nproc B() { }\n\
             func F(v : int<8>) -> int<8> { return v; }\n\
             proc P(n : int<8>) {\n\
               var t : int<8>;\n\
               if n == 1 prob 0.5 { t = min(a[n], a[128 - n]); } else { t = 0; }\n\
               for i in 1 .. 128 { a[i] = min(t, a[i]); }\n\
               while t > 0 iters 10 { t = t - 1; }\n\
               x = F(t);\n\
             }\n\
             process Main {\n\
               fork { call A(); call B(); }\n\
               send Main x + 1;\n\
               receive x;\n\
               wait 100;\n\
             }\n",
        );
    }

    #[test]
    fn roundtrips_allow_annotations() {
        roundtrip(
            "system T;\n@allow(A008)\nvar x : int<8>;\n\
             @allow(A006, A009)\nprocess Main { x = 1; }\n",
        );
        let spec = parse(
            "system T;\n@allow(A008)\nvar x : int<8>;\nprocess Main { x = 1; }\n",
        )
        .unwrap();
        assert!(pretty(&spec).contains("@allow(A008)\nvar x"));
    }

    #[test]
    fn expr_str_parenthesizes() {
        let spec = parse("system T;\nvar x : int<8>;\nproc P() { x = 1 + 2 * 3; }").unwrap();
        let Stmt::Assign { value, .. } = &spec.behaviors[0].body[0] else {
            panic!();
        };
        assert_eq!(expr_str(value), "(1 + (2 * 3))");
    }

    #[test]
    fn prob_prints_as_float() {
        let spec =
            parse("system T;\nvar x : int<8>;\nproc P() { if x > 0 prob 1 { x = 0; } }").unwrap();
        let printed = pretty(&spec);
        assert!(printed.contains("prob 1.0"), "{printed}");
        roundtrip(&printed);
    }
}
