//! Name → source-location mapping, built from a parsed specification.
//!
//! This lives in `slif-speclang` (not above it) because spans originate
//! here: the frontend names behavior nodes after their `BehaviorDecl` and
//! variable nodes after their `VarDecl`, so any layer holding a graph
//! node name can recover its source location without depending on the
//! analyzer. `slif-analyze` re-exports this type for compatibility.

use crate::ast::Spec;
use crate::span::Span;
use std::collections::HashMap;

/// Specification-source locations for the graph's named objects, used to
/// attach [`Span`]s to findings and session updates.
///
/// The frontend names behavior nodes after their `BehaviorDecl` and
/// variable nodes after their `VarDecl`, so a name-keyed map recovers
/// the source location of most nodes; nodes without a mapped name (e.g.
/// synthesized helpers) simply get no span.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    spans: HashMap<String, Span>,
}

impl SourceMap {
    /// Builds the map from a parsed specification: every behavior,
    /// system-level variable, and behavior-local variable by name.
    pub fn from_spec(spec: &Spec) -> Self {
        let mut spans = HashMap::new();
        for v in &spec.vars {
            spans.insert(v.name.clone(), v.span);
        }
        for b in &spec.behaviors {
            spans.insert(b.name.clone(), b.span);
            for local in &b.locals {
                spans.entry(local.name.clone()).or_insert(local.span);
            }
        }
        Self { spans }
    }

    /// Records (or replaces) one name's location.
    pub fn insert(&mut self, name: impl Into<String>, span: Span) {
        self.spans.insert(name.into(), span);
    }

    /// The recorded location of `name`, if any.
    pub fn span_of(&self, name: &str) -> Option<Span> {
        self.spans.get(name).copied()
    }

    /// Number of recorded names.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` when no names are recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn source_map_covers_vars_and_behaviors() {
        let spec = parse("system T;\nvar g : int<8>;\nprocess Main { var l : int<4>; l = g; }\n")
            .expect("fixture parses");
        let map = SourceMap::from_spec(&spec);
        assert!(!map.is_empty());
        assert_eq!(map.len(), 3);
        let g = map.span_of("g").expect("g recorded");
        assert_eq!(g.line, 2);
        assert!(map.span_of("Main").is_some());
        assert!(map.span_of("l").is_some());
        assert!(map.span_of("nope").is_none());
    }

    #[test]
    fn source_map_insert_overrides() {
        let mut map = SourceMap::default();
        let span = Span {
            start: 1,
            end: 2,
            line: 9,
            col: 4,
        };
        map.insert("x", span);
        assert_eq!(map.span_of("x"), Some(span));
    }
}
