//! Recursive-descent parser: token stream → [`Spec`] AST.

use crate::ast::{
    BehaviorDecl, BehaviorKind, BinOp, ConstDecl, Direction, Expr, LValue, Param, PortDecl, Spec,
    Stmt, Type, UnOp, VarDecl,
};
use crate::diag::{codes, Diagnostic, SpecError};
use crate::lexer::lex_recovering;
use crate::limits::ParseLimits;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// The parser stops recording diagnostics past this count; recovery keeps
/// going, but a `P003` marker replaces the overflow.
const MAX_DIAGNOSTICS: usize = 64;

/// Parses a full specification from source text.
///
/// The parser recovers at statement and declaration boundaries, so a
/// single pass over an invalid specification reports *all* its lexical
/// and syntactic diagnostics, not just the first.
///
/// # Errors
///
/// A [`SpecError`] aggregating every [`Diagnostic`] found. Use
/// [`parse_partial`] to also obtain the best-effort AST.
///
/// # Examples
///
/// ```
/// let spec = slif_speclang::parse(
///     "system Tiny;\n\
///      port in1 : in int<8>;\n\
///      var x : int<8>;\n\
///      process Main { x = in1; }\n",
/// )?;
/// assert_eq!(spec.name, "Tiny");
/// assert_eq!(spec.behaviors.len(), 1);
/// # Ok::<(), slif_speclang::SpecError>(())
/// ```
pub fn parse(source: &str) -> Result<Spec, SpecError> {
    parse_with_limits(source, &ParseLimits::default())
}

/// [`parse`] under explicit [`ParseLimits`] resource caps.
///
/// # Errors
///
/// A [`SpecError`] aggregating every [`Diagnostic`] found; an exceeded
/// cap is reported with the dedicated [`codes::PARSE_LIMIT`] code.
pub fn parse_with_limits(source: &str, limits: &ParseLimits) -> Result<Spec, SpecError> {
    let (spec, diags) = parse_partial_with_limits(source, limits);
    if diags.iter().any(Diagnostic::is_error) {
        Err(SpecError::batch(diags))
    } else {
        Ok(spec)
    }
}

/// Parses with error recovery, always returning the best-effort [`Spec`]
/// alongside every diagnostic found (empty when the source is clean).
///
/// Declarations and statements that fail to parse are dropped from the
/// AST; everything before and after a synchronization point survives.
pub fn parse_partial(source: &str) -> (Spec, Vec<Diagnostic>) {
    parse_partial_with_limits(source, &ParseLimits::default())
}

/// [`parse_partial`] under explicit [`ParseLimits`] resource caps.
///
/// An input over `max_bytes` is not lexed at all (the returned [`Spec`]
/// is empty); an input over `max_tokens` is truncated at the cap and
/// parsed up to there; nesting past `max_depth` is reported and recovered
/// from like any other statement-level error. Every cap violation is a
/// [`codes::PARSE_LIMIT`] diagnostic.
pub fn parse_partial_with_limits(source: &str, limits: &ParseLimits) -> (Spec, Vec<Diagnostic>) {
    let empty_spec = || Spec {
        name: String::new(),
        ports: Vec::new(),
        consts: Vec::new(),
        vars: Vec::new(),
        behaviors: Vec::new(),
    };
    if source.len() > limits.max_bytes {
        let diag = Diagnostic::error(
            Span::new(0, 0, 1, 1),
            codes::PARSE_LIMIT,
            format!(
                "specification is {} bytes; the limit is {}",
                source.len(),
                limits.max_bytes
            ),
        );
        return (empty_spec(), vec![diag]);
    }
    let (mut tokens, mut lex_diags) = lex_recovering(source);
    // `tokens` always ends with Eof; the cap counts real tokens only.
    if tokens.len() - 1 > limits.max_tokens {
        let cut_span = tokens[limits.max_tokens].span;
        lex_diags.push(Diagnostic::error(
            cut_span,
            codes::PARSE_LIMIT,
            format!(
                "specification has {} tokens; the limit is {} (input truncated there)",
                tokens.len() - 1,
                limits.max_tokens
            ),
        ));
        tokens.truncate(limits.max_tokens);
        tokens.push(Token {
            kind: TokenKind::Eof,
            span: cut_span,
        });
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        hoisted_locals: Vec::new(),
        diags: lex_diags,
        depth: 0,
        max_depth: limits.max_depth.max(1),
    };
    let spec = parser.spec_recovering();
    let mut diags = parser.diags;
    if diags.len() > MAX_DIAGNOSTICS {
        diags.truncate(MAX_DIAGNOSTICS);
        diags.push(Diagnostic::error(
            parser.tokens[parser.pos].span,
            codes::PARSE_TOO_MANY_ERRORS,
            format!("too many diagnostics; reporting the first {MAX_DIAGNOSTICS}"),
        ));
    }
    (spec, diags)
}

/// Top-level items parsed out of a dirty region, per category and in
/// source order within each category — exactly the shape needed to splice
/// them back into an existing [`Spec`].
#[derive(Debug, Default)]
pub(crate) struct RegionItems {
    pub ports: Vec<PortDecl>,
    pub consts: Vec<ConstDecl>,
    pub vars: Vec<VarDecl>,
    pub behaviors: Vec<BehaviorDecl>,
}

/// Parses a standalone run of top-level declarations (no `system` header)
/// from an already-lexed token stream whose spans have been offset to the
/// region's position in the full source. Used by dirty-region reparsing;
/// callers treat *any* returned diagnostic as "fall back to a full parse",
/// so this path never needs to recover cleverly.
pub(crate) fn parse_items_region(
    tokens: Vec<Token>,
    lex_diags: Vec<Diagnostic>,
    limits: &ParseLimits,
) -> (RegionItems, Vec<Diagnostic>) {
    let mut parser = Parser {
        tokens,
        pos: 0,
        hoisted_locals: Vec::new(),
        diags: lex_diags,
        depth: 0,
        max_depth: limits.max_depth.max(1),
    };
    let mut items = RegionItems::default();
    loop {
        let result = match parser.peek() {
            TokenKind::Eof => break,
            TokenKind::Port => parser.port_decl().map(|p| items.ports.push(p)),
            TokenKind::Const => parser.const_decl().map(|c| items.consts.push(c)),
            TokenKind::Var => parser.var_decl().map(|v| items.vars.push(v)),
            TokenKind::Process | TokenKind::Proc | TokenKind::Func => {
                parser.behavior_decl().map(|b| items.behaviors.push(b))
            }
            TokenKind::At => parser.annotated_decl().map(|d| match d {
                AnnotatedDecl::Var(v) => items.vars.push(v),
                AnnotatedDecl::Behavior(b) => items.behaviors.push(b),
            }),
            _ => {
                let diag = parser.error(format!("expected a declaration, found {}", parser.peek()));
                parser.bump();
                Err(diag)
            }
        };
        if let Err(diag) = result {
            parser.report(diag);
            parser.sync_decl();
        }
    }
    (items, parser.diags)
}

/// A declaration parsed together with its `@allow` annotations.
enum AnnotatedDecl {
    Var(VarDecl),
    Behavior(BehaviorDecl),
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Local declarations of the behavior being parsed; `var` is allowed
    /// in any nested block and hoisted to behavior scope.
    hoisted_locals: Vec<VarDecl>,
    /// Diagnostics accumulated across recovery points.
    diags: Vec<Diagnostic>,
    /// Current nesting depth of blocks, `if` chains, and expressions.
    depth: usize,
    /// The [`ParseLimits::max_depth`] cap (at least 1).
    max_depth: usize,
}

impl Parser {
    /// Parses the whole token stream, synchronizing at declaration
    /// boundaries after an error so every declaration gets a chance.
    fn spec_recovering(&mut self) -> Spec {
        let mut spec = Spec {
            name: String::new(),
            ports: Vec::new(),
            consts: Vec::new(),
            vars: Vec::new(),
            behaviors: Vec::new(),
        };
        match self.header() {
            Ok(name) => spec.name = name,
            Err(diag) => {
                self.report(diag);
                self.sync_decl();
            }
        }
        loop {
            let result = match self.peek() {
                TokenKind::Eof => return spec,
                TokenKind::Port => self.port_decl().map(|p| spec.ports.push(p)),
                TokenKind::Const => self.const_decl().map(|c| spec.consts.push(c)),
                TokenKind::Var => self.var_decl().map(|v| spec.vars.push(v)),
                TokenKind::Process | TokenKind::Proc | TokenKind::Func => {
                    self.behavior_decl().map(|b| spec.behaviors.push(b))
                }
                TokenKind::At => self.annotated_decl().map(|d| match d {
                    AnnotatedDecl::Var(v) => spec.vars.push(v),
                    AnnotatedDecl::Behavior(b) => spec.behaviors.push(b),
                }),
                _ => {
                    let diag =
                        self.error(format!("expected a declaration, found {}", self.peek()));
                    self.bump();
                    Err(diag)
                }
            };
            if let Err(diag) = result {
                self.report(diag);
                self.sync_decl();
            }
        }
    }

    /// Parses the `system <name>;` header.
    fn header(&mut self) -> Result<String, Diagnostic> {
        self.expect(TokenKind::System)?;
        let name = self.ident()?;
        self.expect(TokenKind::Semi)?;
        Ok(name)
    }

    /// Records a diagnostic; past [`MAX_DIAGNOSTICS`] only one overflow
    /// entry is kept (recovery itself continues).
    fn report(&mut self, diag: Diagnostic) {
        if self.diags.len() <= MAX_DIAGNOSTICS {
            self.diags.push(diag);
        }
    }

    /// Skips ahead to the next top-level declaration keyword, or past a
    /// top-level `;`, tracking brace depth so keywords inside behavior
    /// bodies don't stop the scan.
    fn sync_decl(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::RBrace => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                }
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::Port
                | TokenKind::Const
                | TokenKind::Var
                | TokenKind::Process
                | TokenKind::Proc
                | TokenKind::Func
                | TokenKind::At
                    if depth == 0 =>
                {
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Skips ahead to the next statement boundary inside a block: past a
    /// same-depth `;`, or to a same-depth `}` (left for the block to
    /// close), or to a statement keyword once progress has been made.
    fn sync_stmt(&mut self) {
        let mut depth = 0usize;
        let mut consumed = false;
        loop {
            match self.peek() {
                TokenKind::Eof => return,
                TokenKind::Semi if depth == 0 => {
                    self.bump();
                    return;
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.bump();
                }
                TokenKind::LBrace => {
                    depth += 1;
                    self.bump();
                }
                TokenKind::If
                | TokenKind::For
                | TokenKind::While
                | TokenKind::Fork
                | TokenKind::Send
                | TokenKind::Receive
                | TokenKind::Return
                | TokenKind::Wait
                | TokenKind::Call
                | TokenKind::Var
                    if depth == 0 && consumed =>
                {
                    return;
                }
                _ => {
                    self.bump();
                    consumed = true;
                }
            }
        }
    }

    fn port_decl(&mut self) -> Result<PortDecl, Diagnostic> {
        let span = self.span();
        self.expect(TokenKind::Port)?;
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let direction = match self.peek().clone() {
            TokenKind::In => {
                self.bump();
                Direction::In
            }
            TokenKind::Out => {
                self.bump();
                Direction::Out
            }
            TokenKind::Inout => {
                self.bump();
                Direction::Inout
            }
            other => return Err(self.error(format!("expected port direction, found {other}"))),
        };
        let ty = self.ty()?;
        if ty.is_array() {
            return Err(self.constraint("ports must have scalar types".to_owned()));
        }
        self.expect(TokenKind::Semi)?;
        Ok(PortDecl {
            name,
            direction,
            ty,
            span,
        })
    }

    fn const_decl(&mut self) -> Result<ConstDecl, Diagnostic> {
        let span = self.span();
        self.expect(TokenKind::Const)?;
        let name = self.ident()?;
        self.expect(TokenKind::Assign)?;
        let value = self.expr()?;
        self.expect(TokenKind::Semi)?;
        Ok(ConstDecl { name, value, span })
    }

    fn var_decl(&mut self) -> Result<VarDecl, Diagnostic> {
        self.var_decl_with(Vec::new(), None)
    }

    fn var_decl_with(
        &mut self,
        allows: Vec<String>,
        start: Option<Span>,
    ) -> Result<VarDecl, Diagnostic> {
        let span = start.unwrap_or_else(|| self.span());
        self.expect(TokenKind::Var)?;
        let name = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.ty()?;
        self.expect(TokenKind::Semi)?;
        Ok(VarDecl {
            name,
            ty,
            allows,
            span,
        })
    }

    /// Parses a run of `@allow(CODE, ...)` annotations and the `var` or
    /// behavior declaration they attach to. The declaration's span starts
    /// at the first `@`, so dirty-region reparsing keeps an annotation and
    /// its declaration inside one extent.
    fn annotated_decl(&mut self) -> Result<AnnotatedDecl, Diagnostic> {
        let start = self.span();
        let mut allows = Vec::new();
        while self.peek() == &TokenKind::At {
            self.bump();
            let ann_span = self.span();
            let name = self.ident()?;
            if name != "allow" {
                return Err(Diagnostic::error(
                    ann_span,
                    codes::PARSE_SYNTAX,
                    format!("unknown annotation `@{name}`; only `@allow` is supported"),
                ));
            }
            self.expect(TokenKind::LParen)?;
            loop {
                allows.push(self.ident()?);
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        match self.peek() {
            TokenKind::Var => self
                .var_decl_with(allows, Some(start))
                .map(AnnotatedDecl::Var),
            TokenKind::Process | TokenKind::Proc | TokenKind::Func => self
                .behavior_decl_with(allows, Some(start))
                .map(AnnotatedDecl::Behavior),
            other => Err(self.constraint(format!(
                "`@allow` must precede a `var` or behavior declaration, found {other}"
            ))),
        }
    }

    fn ty(&mut self) -> Result<Type, Diagnostic> {
        match self.peek().clone() {
            TokenKind::BoolType => {
                self.bump();
                Ok(Type::Bool)
            }
            TokenKind::IntType => {
                self.bump();
                self.expect(TokenKind::Lt)?;
                let bits = self.int_lit()?;
                if bits == 0 || bits > 128 {
                    return Err(self.constraint("integer width must be 1..=128".to_owned()));
                }
                self.expect(TokenKind::Gt)?;
                if self.peek() == &TokenKind::LBracket {
                    self.bump();
                    let len = self.int_lit()?;
                    if len == 0 {
                        return Err(self.constraint("array length must be positive".to_owned()));
                    }
                    self.expect(TokenKind::RBracket)?;
                    Ok(Type::Array {
                        len,
                        elem_bits: bits as u32,
                    })
                } else {
                    Ok(Type::Int(bits as u32))
                }
            }
            other => Err(self.error(format!("expected a type, found {other}"))),
        }
    }

    fn behavior_decl(&mut self) -> Result<BehaviorDecl, Diagnostic> {
        self.behavior_decl_with(Vec::new(), None)
    }

    fn behavior_decl_with(
        &mut self,
        allows: Vec<String>,
        start: Option<Span>,
    ) -> Result<BehaviorDecl, Diagnostic> {
        let span = start.unwrap_or_else(|| self.span());
        let (kind_tok, has_params) = match self.peek() {
            TokenKind::Process => (TokenKind::Process, false),
            TokenKind::Proc => (TokenKind::Proc, true),
            TokenKind::Func => (TokenKind::Func, true),
            other => return Err(self.error(format!("expected a behavior, found {other}"))),
        };
        self.bump();
        let name = self.ident()?;
        let mut params = Vec::new();
        if has_params {
            self.expect(TokenKind::LParen)?;
            while self.peek() != &TokenKind::RParen {
                let pspan = self.span();
                let pname = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let pty = self.ty()?;
                if pty.is_array() {
                    return Err(self.constraint("parameters must have scalar types".to_owned()));
                }
                params.push(Param {
                    name: pname,
                    ty: pty,
                    span: pspan,
                });
                if self.peek() == &TokenKind::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let kind = match kind_tok {
            TokenKind::Process => BehaviorKind::Process,
            TokenKind::Proc => BehaviorKind::Procedure,
            TokenKind::Func => {
                self.expect(TokenKind::Arrow)?;
                let ret = self.ty()?;
                if ret.is_array() {
                    return Err(self.constraint("functions must return scalars".to_owned()));
                }
                BehaviorKind::Function { ret }
            }
            _ => unreachable!("kind_tok is one of the three behavior keywords"),
        };
        self.hoisted_locals = Vec::new();
        let body = self.block()?;
        let locals = std::mem::take(&mut self.hoisted_locals);
        Ok(BehaviorDecl {
            name,
            kind,
            params,
            locals,
            body,
            allows,
            span,
        })
    }

    /// Parses `{ (var-decl | stmt)* }`; local declarations in any nested
    /// block are hoisted to the enclosing behavior's scope.
    ///
    /// A malformed statement is reported and skipped (synchronizing at the
    /// next `;` or the closing `}`), so the rest of the block still parses.
    fn block(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.descend()?;
        let result = self.block_inner();
        self.depth -= 1;
        result
    }

    fn block_inner(&mut self) -> Result<Vec<Stmt>, Diagnostic> {
        self.expect(TokenKind::LBrace)?;
        let mut body = Vec::new();
        loop {
            let result = match self.peek() {
                TokenKind::RBrace => break,
                TokenKind::Eof => {
                    return Err(self.error("unexpected end of input; expected `}`".to_owned()))
                }
                TokenKind::Var => self.var_decl().map(|decl| self.hoisted_locals.push(decl)),
                _ => self.stmt().map(|stmt| body.push(stmt)),
            };
            if let Err(diag) = result {
                self.report(diag);
                self.sync_stmt();
            }
        }
        self.expect(TokenKind::RBrace)?;
        Ok(body)
    }

    fn stmt(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Call => {
                self.bump();
                let callee = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let args = self.args()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Call { callee, args, span })
            }
            TokenKind::If => self.if_stmt(),
            TokenKind::For => {
                self.bump();
                let var = self.ident()?;
                self.expect(TokenKind::In)?;
                let lo = self.expr()?;
                self.expect(TokenKind::DotDot)?;
                let hi = self.expr()?;
                let body = self.block()?;
                Ok(Stmt::For {
                    var,
                    lo,
                    hi,
                    body,
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                let cond = self.expr()?;
                let iters = if self.peek() == &TokenKind::Iters {
                    self.bump();
                    Some(self.number_lit()?)
                } else {
                    None
                };
                let body = self.block()?;
                Ok(Stmt::While {
                    cond,
                    iters,
                    body,
                    span,
                })
            }
            TokenKind::Fork => {
                self.bump();
                let body = self.block()?;
                Ok(Stmt::Fork { body, span })
            }
            TokenKind::Send => {
                self.bump();
                let target = self.ident()?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Send {
                    target,
                    value,
                    span,
                })
            }
            TokenKind::Receive => {
                self.bump();
                let lhs = self.lvalue()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Receive { lhs, span })
            }
            TokenKind::Return => {
                self.bump();
                let value = if self.peek() == &TokenKind::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Wait => {
                self.bump();
                let amount = self.int_lit()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Wait { amount, span })
            }
            TokenKind::Ident(_) => {
                let lhs = self.lvalue()?;
                self.expect(TokenKind::Assign)?;
                let value = self.expr()?;
                self.expect(TokenKind::Semi)?;
                Ok(Stmt::Assign { lhs, value, span })
            }
            other => Err(self.error(format!("expected a statement, found {other}"))),
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        self.descend()?;
        let result = self.if_stmt_inner();
        self.depth -= 1;
        result
    }

    fn if_stmt_inner(&mut self) -> Result<Stmt, Diagnostic> {
        let span = self.span();
        self.expect(TokenKind::If)?;
        let cond = self.expr()?;
        let prob = if self.peek() == &TokenKind::Prob {
            self.bump();
            let p = self.number_lit()?;
            if !(0.0..=1.0).contains(&p) {
                return Err(self.constraint("branch probability must be within 0..=1".to_owned()));
            }
            Some(p)
        } else {
            None
        };
        let then_body = self.block()?;
        let else_body = if self.peek() == &TokenKind::Else {
            self.bump();
            if self.peek() == &TokenKind::If {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            prob,
            then_body,
            else_body,
            span,
        })
    }

    fn lvalue(&mut self) -> Result<LValue, Diagnostic> {
        let span = self.span();
        let name = self.ident()?;
        if self.peek() == &TokenKind::LBracket {
            self.bump();
            let index = self.expr()?;
            self.expect(TokenKind::RBracket)?;
            Ok(LValue::Index {
                name,
                index: Box::new(index),
                span,
            })
        } else {
            Ok(LValue::Name { name, span })
        }
    }

    fn args(&mut self) -> Result<Vec<Expr>, Diagnostic> {
        let mut args = Vec::new();
        if self.peek() == &TokenKind::RParen {
            return Ok(args);
        }
        loop {
            args.push(self.expr()?);
            if self.peek() == &TokenKind::Comma {
                self.bump();
            } else {
                return Ok(args);
            }
        }
    }

    // Expression precedence: or < and < comparison < add < mul < unary.
    fn expr(&mut self) -> Result<Expr, Diagnostic> {
        self.descend()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &TokenKind::Or {
            let span = self.span();
            self.bump();
            let rhs = self.and_expr()?;
            lhs = binary(BinOp::Or, lhs, rhs, span);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &TokenKind::And {
            let span = self.span();
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = binary(BinOp::And, lhs, rhs, span);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.add_expr()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        let span = self.span();
        self.bump();
        let rhs = self.add_expr()?;
        Ok(binary(op, lhs, rhs, span))
    }

    fn add_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = binary(op, lhs, rhs, span);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let span = self.span();
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = binary(op, lhs, rhs, span);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, Diagnostic> {
        self.descend()?;
        let result = self.unary_expr_inner();
        self.depth -= 1;
        result
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek() {
            TokenKind::Minus => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    operand: Box::new(operand),
                    span,
                })
            }
            TokenKind::Not => {
                self.bump();
                let operand = self.unary_expr()?;
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    operand: Box::new(operand),
                    span,
                })
            }
            _ => self.primary_expr(),
        }
    }

    fn primary_expr(&mut self) -> Result<Expr, Diagnostic> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Int(value) => {
                self.bump();
                Ok(Expr::Int { value, span })
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Bool { value: true, span })
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Bool { value: false, span })
            }
            TokenKind::LParen => {
                self.bump();
                let inner = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek() {
                    TokenKind::LParen => {
                        self.bump();
                        let args = self.args()?;
                        self.expect(TokenKind::RParen)?;
                        Ok(Expr::Call {
                            callee: name,
                            args,
                            span,
                        })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(TokenKind::RBracket)?;
                        Ok(Expr::Index {
                            name,
                            index: Box::new(index),
                            span,
                        })
                    }
                    _ => Ok(Expr::Name { name, span }),
                }
            }
            other => Err(self.error(format!("expected an expression, found {other}"))),
        }
    }

    // --- token plumbing ---

    /// Enters one nesting level (block, `if` chain, or expression),
    /// refusing with a [`codes::PARSE_LIMIT`] diagnostic at the cap. The
    /// caller decrements `depth` when the level is done — on both the Ok
    /// and the Err path, so recovery never leaks depth.
    fn descend(&mut self) -> Result<(), Diagnostic> {
        if self.depth >= self.max_depth {
            return Err(Diagnostic::error(
                self.span(),
                codes::PARSE_LIMIT,
                format!("nesting exceeds the depth limit of {}", self.max_depth),
            ));
        }
        self.depth += 1;
        Ok(())
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) {
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), Diagnostic> {
        if self.peek() == &kind {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek())))
        }
    }

    fn ident(&mut self) -> Result<String, Diagnostic> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(self.error(format!("expected an identifier, found {other}"))),
        }
    }

    fn int_lit(&mut self) -> Result<u64, Diagnostic> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.error(format!("expected an integer, found {other}"))),
        }
    }

    /// An integer or float literal, as f64 (for `prob` / `iters`).
    fn number_lit(&mut self) -> Result<f64, Diagnostic> {
        match *self.peek() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            TokenKind::Float(v) => {
                self.bump();
                Ok(v)
            }
            ref other => Err(self.error(format!("expected a number, found {other}"))),
        }
    }

    /// A syntax error ([`codes::PARSE_SYNTAX`]) at the current token.
    fn error(&self, message: String) -> Diagnostic {
        Diagnostic::error(self.span(), codes::PARSE_SYNTAX, message)
    }

    /// A constraint violation ([`codes::PARSE_CONSTRAINT`]) at the current
    /// token: syntactically fine, but breaking a language rule.
    fn constraint(&self, message: String) -> Diagnostic {
        Diagnostic::error(self.span(), codes::PARSE_CONSTRAINT, message)
    }
}

fn binary(op: BinOp, lhs: Expr, rhs: Expr, span: Span) -> Expr {
    Expr::Binary {
        op,
        lhs: Box::new(lhs),
        rhs: Box::new(rhs),
        span,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Spec {
        match parse(src) {
            Ok(s) => s,
            Err(e) => panic!("parse failed: {e}\nsource:\n{src}"),
        }
    }

    #[test]
    fn parses_minimal_system() {
        let s = parse_ok("system T;");
        assert_eq!(s.name, "T");
        assert!(s.ports.is_empty());
    }

    #[test]
    fn parses_ports_and_vars() {
        let s = parse_ok(
            "system T;\n\
             port in1 : in int<8>;\n\
             port out1 : out int<16>;\n\
             var x : int<8>;\n\
             var mr1 : int<8>[384];\n",
        );
        assert_eq!(s.ports.len(), 2);
        assert_eq!(s.ports[0].direction, Direction::In);
        assert_eq!(s.ports[1].ty, Type::Int(16));
        assert_eq!(
            s.vars[1].ty,
            Type::Array {
                len: 384,
                elem_bits: 8
            }
        );
    }

    #[test]
    fn parses_const() {
        let s = parse_ok("system T; const N = 384;");
        assert_eq!(s.consts.len(), 1);
        assert!(matches!(s.consts[0].value, Expr::Int { value: 384, .. }));
    }

    #[test]
    fn parses_process_with_locals_and_statements() {
        let s = parse_ok(
            "system T;\n\
             var x : int<8>;\n\
             process Main {\n\
               var t : int<8>;\n\
               t = x + 1;\n\
               x = t * 2;\n\
               wait 100;\n\
             }\n",
        );
        let main = s.behavior("Main").unwrap();
        assert_eq!(main.kind, BehaviorKind::Process);
        assert_eq!(main.locals.len(), 1);
        assert_eq!(main.body.len(), 3);
    }

    #[test]
    fn parses_proc_and_func_signatures() {
        let s = parse_ok(
            "system T;\n\
             proc P(a : int<8>, b : bool) { a = 1; }\n\
             func F(x : int<8>) -> int<16> { return x + 1; }\n",
        );
        let p = s.behavior("P").unwrap();
        assert_eq!(p.kind, BehaviorKind::Procedure);
        assert_eq!(p.params.len(), 2);
        assert_eq!(p.params[1].ty, Type::Bool);
        let f = s.behavior("F").unwrap();
        assert_eq!(f.kind, BehaviorKind::Function { ret: Type::Int(16) });
    }

    #[test]
    fn parses_if_elsif_with_prob() {
        let s = parse_ok(
            "system T;\nvar x : int<8>;\nproc P(n : int<8>) {\n\
               if n == 1 prob 0.5 { x = 1; }\n\
               else if n == 2 { x = 2; }\n\
               else { x = 3; }\n\
             }\n",
        );
        let p = s.behavior("P").unwrap();
        let Stmt::If {
            prob, else_body, ..
        } = &p.body[0]
        else {
            panic!("expected if");
        };
        assert_eq!(*prob, Some(0.5));
        assert!(matches!(&else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_for_and_while() {
        let s = parse_ok(
            "system T;\nvar a : int<8>[128];\nproc P() {\n\
               for i in 1 .. 128 { a[i] = i; }\n\
               while a[0] > 0 iters 10 { a[0] = a[0] - 1; }\n\
             }\n",
        );
        let p = s.behavior("P").unwrap();
        assert!(matches!(&p.body[0], Stmt::For { .. }));
        let Stmt::While { iters, .. } = &p.body[1] else {
            panic!("expected while");
        };
        assert_eq!(*iters, Some(10.0));
    }

    #[test]
    fn parses_fork_send_receive() {
        let s = parse_ok(
            "system T;\nvar m : int<8>;\n\
             proc A() { m = 1; }\nproc B() { m = 2; }\n\
             process Main {\n\
               fork { call A(); call B(); }\n\
               send Worker m + 1;\n\
               receive m;\n\
             }\n\
             process Worker { receive m; }\n",
        );
        let main = s.behavior("Main").unwrap();
        assert!(matches!(&main.body[0], Stmt::Fork { body, .. } if body.len() == 2));
        assert!(matches!(&main.body[1], Stmt::Send { target, .. } if target == "Worker"));
        assert!(matches!(&main.body[2], Stmt::Receive { .. }));
    }

    #[test]
    fn expression_precedence() {
        let s = parse_ok("system T;\nvar x : int<8>;\nproc P() { x = 1 + 2 * 3; }\n");
        let p = s.behavior("P").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else {
            panic!();
        };
        // 1 + (2 * 3)
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value
        else {
            panic!("expected + at root, got {value:?}");
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn logical_precedence_below_comparison() {
        let s = parse_ok(
            "system T;\nvar b : bool;\nproc P(x : int<8>) { b = x > 1 and x < 5 or not b; }\n",
        );
        let p = s.behavior("P").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else {
            panic!();
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn builtin_calls_and_indexing_in_expressions() {
        let s = parse_ok(
            "system T;\nvar mr1 : int<8>[384];\nvar t : int<8>;\n\
             proc P(v : int<8>) { t = min(mr1[v], mr1[128 + v]); }\n",
        );
        let p = s.behavior("P").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else {
            panic!();
        };
        let Expr::Call { callee, args, .. } = value else {
            panic!("expected call");
        };
        assert_eq!(callee, "min");
        assert_eq!(args.len(), 2);
        assert!(matches!(&args[1], Expr::Index { .. }));
    }

    #[test]
    fn error_reports_location() {
        let err = parse("system T;\nvar x : int<8>\nvar y : int<8>;").unwrap_err();
        let diag = &err.diagnostics()[0];
        assert_eq!(diag.span().line, 3);
        assert!(diag.message().contains("expected ;"));
        assert_eq!(diag.code(), codes::PARSE_SYNTAX);
    }

    #[test]
    fn rejects_array_port() {
        assert!(parse("system T; port p : in int<8>[4];").is_err());
    }

    #[test]
    fn rejects_zero_width_int() {
        assert!(parse("system T; var x : int<0>;").is_err());
    }

    #[test]
    fn rejects_bad_probability() {
        assert!(
            parse("system T;\nvar x : int<8>;\nproc P() { if x > 0 prob 1.5 { x = 1; } }").is_err()
        );
    }

    #[test]
    fn rejects_statement_outside_behavior() {
        assert!(parse("system T; x = 1;").is_err());
    }

    #[test]
    fn recovery_reports_three_errors_in_one_pass() {
        // Three distinct syntax errors: missing `;`, a bad statement, and
        // a malformed declaration — all reported together.
        let src = "system T;\n\
                   var x : int<8>\n\
                   var y : int<8>;\n\
                   proc P() { x = ; y = 2; }\n\
                   port z :: in int<8>;\n\
                   proc Q() { y = 1; }\n";
        let err = parse(src).unwrap_err();
        assert!(
            err.errors().count() >= 3,
            "want >= 3 errors, got:\n{err}"
        );
        // Recovery kept going: the declarations after each error parsed.
        let (spec, diags) = parse_partial(src);
        assert!(diags.len() >= 3);
        assert!(spec.behavior("Q").is_some(), "recovery lost proc Q");
        assert!(spec.vars.iter().any(|v| v.name == "y"));
    }

    #[test]
    fn recovery_keeps_good_statements_around_a_bad_one() {
        let src = "system T;\nvar x : int<8>;\n\
                   proc P() { x = 1; x = ; x = 3; }\n";
        let (spec, diags) = parse_partial(src);
        assert_eq!(diags.len(), 1);
        let p = spec.behavior("P").unwrap();
        assert_eq!(p.body.len(), 2, "good statements on both sides survive");
    }

    #[test]
    fn recovery_survives_missing_system_header() {
        let (spec, diags) = parse_partial("var x : int<8>;\nproc P() { x = 1; }\n");
        assert!(!diags.is_empty());
        assert!(spec.behavior("P").is_some());
        assert_eq!(spec.vars.len(), 1);
    }

    #[test]
    fn recovery_collects_lexer_and_parser_diagnostics_together() {
        let src = "system T;\nvar #x : int<8>;\nproc P() { x = ; }\n";
        let err = parse(src).unwrap_err();
        let codes: Vec<&str> = err.diagnostics().iter().map(|d| d.code()).collect();
        assert!(codes.contains(&super::codes::LEX_UNEXPECTED_CHAR), "{codes:?}");
        assert!(codes.contains(&super::codes::PARSE_SYNTAX), "{codes:?}");
    }

    #[test]
    fn recovery_never_loops_on_garbage() {
        // Pure garbage, unbalanced braces, stray tokens: must terminate
        // and report without panicking.
        for src in [
            "%%%%",
            "system ; } } {",
            "system T; proc P() {",
            "system T; proc P() { if }",
            "system T; }{)(",
            "{ { { {",
        ] {
            let (_, diags) = parse_partial(src);
            assert!(!diags.is_empty(), "{src:?} should diagnose");
        }
    }

    #[test]
    fn diagnostic_flood_is_capped() {
        let mut src = String::from("system T;\n");
        for _ in 0..200 {
            src.push_str("var x : ;\n");
        }
        let (_, diags) = parse_partial(&src);
        assert!(diags.len() <= super::MAX_DIAGNOSTICS + 1);
        assert_eq!(
            diags.last().unwrap().code(),
            super::codes::PARSE_TOO_MANY_ERRORS
        );
    }

    #[test]
    fn oversized_input_is_refused_before_lexing() {
        let limits = ParseLimits::default().with_max_bytes(32);
        let src = "system T;\n".repeat(16);
        let (spec, diags) = parse_partial_with_limits(&src, &limits);
        assert!(spec.name.is_empty() && spec.behaviors.is_empty());
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code(), codes::PARSE_LIMIT);
        assert!(diags[0].message().contains("bytes"));
        assert!(parse_with_limits(&src, &limits).is_err());
    }

    #[test]
    fn token_flood_is_truncated_at_the_cap() {
        let mut src = String::from("system T;\nvar x : int<8>;\n");
        for _ in 0..100 {
            src.push_str("proc p() { x = 1; }\n"); // overwhelm the token cap
        }
        let limits = ParseLimits::default().with_max_tokens(40);
        let (spec, diags) = parse_partial_with_limits(&src, &limits);
        assert!(
            diags.iter().any(|d| d.code() == codes::PARSE_LIMIT),
            "no limit diagnostic in {diags:?}"
        );
        // The prefix before the cut still parsed.
        assert_eq!(spec.name, "T");
        assert!(spec.vars.iter().any(|v| v.name == "x"));
    }

    #[test]
    fn deep_expression_nesting_is_capped_not_overflowed() {
        // 500 nested parens would overflow the stack of an unguarded
        // recursive-descent parser; the cap reports P004 instead.
        let mut src = String::from("system T;\nvar x : int<8>;\nproc P() { x = ");
        src.push_str(&"(".repeat(500));
        src.push('1');
        src.push_str(&")".repeat(500));
        src.push_str("; }\n");
        let (_, diags) = parse_partial(&src);
        assert!(
            diags.iter().any(|d| d.code() == codes::PARSE_LIMIT),
            "no depth diagnostic in {} diags",
            diags.len()
        );
    }

    #[test]
    fn deep_block_nesting_is_capped_not_overflowed() {
        let mut src = String::from("system T;\nvar x : int<8>;\nprocess P { ");
        src.push_str(&"if x > 0 { ".repeat(400));
        src.push_str("x = 1; ");
        src.push_str(&"} ".repeat(400));
        src.push_str("}\n");
        let (_, diags) = parse_partial(&src);
        assert!(
            diags.iter().any(|d| d.code() == codes::PARSE_LIMIT),
            "no depth diagnostic"
        );
    }

    #[test]
    fn unary_chains_are_depth_capped() {
        // (`--` would lex as a VHDL comment, so chain `not` instead.)
        let mut src = String::from("system T;\nvar x : int<8>;\nproc P() { x = ");
        src.push_str(&"not ".repeat(500));
        src.push_str("1; }\n");
        let (_, diags) = parse_partial(&src);
        assert!(diags.iter().any(|d| d.code() == codes::PARSE_LIMIT));
    }

    #[test]
    fn corpus_parses_within_default_limits() {
        for entry in crate::corpus::all() {
            let (_, diags) = parse_partial_with_limits(entry.source, &ParseLimits::default());
            assert!(
                diags.iter().all(|d| d.code() != codes::PARSE_LIMIT),
                "{} trips the default limits",
                entry.name
            );
        }
    }

    #[test]
    fn recovery_continues_after_a_depth_trip() {
        // A pathologically deep behavior must not take down its siblings.
        let mut src = String::from("system T;\nvar x : int<8>;\nproc Bad() { x = ");
        src.push_str(&"(".repeat(200));
        src.push('1');
        src.push_str(&")".repeat(200));
        src.push_str("; }\nproc Good() { x = 2; }\n");
        let (spec, diags) = parse_partial(&src);
        assert!(diags.iter().any(|d| d.code() == codes::PARSE_LIMIT));
        assert!(spec.behavior("Good").is_some(), "recovery lost proc Good");
    }

    #[test]
    fn parses_allow_annotations_on_var_and_behavior() {
        let s = parse_ok(
            "system T;\n\
             @allow(A008)\n\
             var x : int<8>;\n\
             @allow(A006, A009)\n\
             process Main { x = 1; }\n",
        );
        assert_eq!(s.vars[0].allows, vec!["A008".to_owned()]);
        let main = s.behavior("Main").unwrap();
        assert_eq!(main.allows, vec!["A006".to_owned(), "A009".to_owned()]);
        // The decl span starts at `@`, so region reparsing tiles correctly.
        assert_eq!(s.vars[0].span.start, "system T;\n".len());
    }

    #[test]
    fn stacked_allow_annotations_accumulate() {
        let s = parse_ok(
            "system T;\nvar x : int<8>;\n\
             @allow(A007)\n@allow(A008)\nproc P() { x = 1; }\n",
        );
        let p = s.behavior("P").unwrap();
        assert_eq!(p.allows, vec!["A007".to_owned(), "A008".to_owned()]);
    }

    #[test]
    fn rejects_allow_on_port_or_const() {
        assert!(parse("system T;\n@allow(A006)\nport p : in int<8>;\n").is_err());
        assert!(parse("system T;\n@allow(A006)\nconst N = 1;\n").is_err());
    }

    #[test]
    fn rejects_unknown_annotation() {
        let err = parse("system T;\n@deny(A006)\nvar x : int<8>;\n").unwrap_err();
        assert!(err.to_string().contains("only `@allow`"));
    }

    #[test]
    fn parenthesized_expressions() {
        let s = parse_ok("system T;\nvar x : int<8>;\nproc P() { x = (1 + 2) * 3; }\n");
        let p = s.behavior("P").unwrap();
        let Stmt::Assign { value, .. } = &p.body[0] else {
            panic!();
        };
        assert!(matches!(value, Expr::Binary { op: BinOp::Mul, .. }));
    }
}
