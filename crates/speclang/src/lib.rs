//! # slif-speclang — the behavioural specification language
//!
//! A small VHDL-flavoured specification language standing in for the VHDL
//! front end the SLIF paper builds on. System design per the paper starts
//! from "a simulatable functional specification" of processes, procedures,
//! variables and communication; this crate provides exactly that substrate:
//!
//! * [`parse`] — lexer + recursive-descent parser producing a [`Spec`] AST,
//! * [`resolve`] — name resolution, constant evaluation and semantic
//!   checking producing a [`ResolvedSpec`],
//! * [`pretty`] — canonical printing (round-trips through the parser),
//! * [`corpus`] — the paper's four benchmark systems (`ans`, `ether`,
//!   `fuzzy`, `vol`) written in this language.
//!
//! The language covers what SLIF construction needs: concurrent
//! `process`es, callable `proc`/`func` behaviors, scalar and array
//! variables, external ports, branch-probability (`prob`) and
//! iteration-count (`iters`) annotations for profiling, `fork`/`join`
//! concurrency, and `send`/`receive` message passing.
//!
//! # Examples
//!
//! ```
//! let spec = slif_speclang::parse(
//!     "system Controller;\n\
//!      port sensor : in int<8>;\n\
//!      var reading : int<8>;\n\
//!      process Main { reading = sensor; wait 10; }\n",
//! )?;
//! let resolved = slif_speclang::resolve(spec)?;
//! assert_eq!(resolved.spec().bv_count(), 2); // Main + reading
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod corpus;
mod diag;
pub mod flow;
pub mod incremental;
mod lexer;
mod limits;
mod parser;
mod pretty;
mod resolver;
mod sourcemap;
mod span;
mod token;

pub use ast::{eq_modulo_spans, ForEachSpan, Spec};
pub use diag::{codes, Diagnostic, Severity, SpecError};
pub use flow::{
    FlowBehavior, FlowExpr, FlowNode, FlowOp, FlowProgram, SlotInfo, SlotKind, Suppressions,
};
pub use incremental::{
    reparse_with_edit, reparse_with_edit_owned, EditDelta, EditError, Reparse, ReparseScope,
};
pub use lexer::{lex, lex_recovering};
pub use limits::ParseLimits;
pub use parser::{parse, parse_partial, parse_partial_with_limits, parse_with_limits};
pub use pretty::{expr_str, pretty};
pub use resolver::{resolve, try_resolve, GlobalSymbol, LocalSymbol, ResolvedSpec, Symbol, BUILTINS};
pub use sourcemap::SourceMap;
pub use span::Span;
pub use token::{Token, TokenKind};

/// Parses and resolves in one step.
///
/// # Errors
///
/// A [`SpecError`] carrying *all* parse diagnostics (the parser recovers
/// at statement/declaration boundaries) or all resolution diagnostics.
pub fn parse_and_resolve(source: &str) -> Result<ResolvedSpec, SpecError> {
    resolve(parse(source)?)
}
