//! The lexer: source text → token stream.
//!
//! Comments run from `//` or `--` (VHDL style) to end of line. Integer
//! literals are decimal or `0x` hexadecimal; float literals (`0.5`) only
//! appear in `prob` annotations but are lexed uniformly.

use crate::diag::{codes, Diagnostic};
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// The lexer stops recording diagnostics past this count; scanning keeps
/// going (the token stream still covers the whole source), but a `P003`
/// marker replaces the overflow. Bounds the memory a pathological input
/// (say, a megabyte of `#`s) can claim through error reporting.
const MAX_LEX_DIAGNOSTICS: usize = 64;

/// Tokenizes `source`, returning the tokens followed by an `Eof` token.
///
/// # Errors
///
/// Returns the first [`Diagnostic`] for unterminated or unknown characters
/// and malformed numbers. Use [`lex_recovering`] to collect every lexical
/// diagnostic in one pass.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let (tokens, mut diags) = lex_recovering(source);
    match diags.is_empty() {
        true => Ok(tokens),
        false => Err(diags.remove(0)),
    }
}

/// Tokenizes `source` with error recovery: malformed input is reported and
/// skipped, so the token stream (always `Eof`-terminated) covers the whole
/// source and *all* lexical diagnostics are returned.
pub fn lex_recovering(source: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Self {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn run(mut self) -> (Vec<Token>, Vec<Diagnostic>) {
        let mut out = Vec::new();
        let mut diags = Vec::new();
        // Records a diagnostic up to the cap; the first overflow becomes a
        // single `P003` marker and the rest are dropped (scanning continues).
        let record = |diags: &mut Vec<Diagnostic>, diag: Diagnostic| {
            if diags.len() < MAX_LEX_DIAGNOSTICS {
                diags.push(diag);
            } else if diags.len() == MAX_LEX_DIAGNOSTICS {
                let span = diag.span();
                diags.push(Diagnostic::error(
                    span,
                    codes::PARSE_TOO_MANY_ERRORS,
                    format!(
                        "too many lexical diagnostics; reporting the first {MAX_LEX_DIAGNOSTICS}"
                    ),
                ));
            }
        };
        loop {
            self.skip_trivia();
            let start = self.pos;
            let (line, col) = (self.line, self.col);
            let Some(b) = self.peek() else {
                out.push(Token {
                    kind: TokenKind::Eof,
                    span: Span::new(start, start, line, col),
                });
                return (out, diags);
            };
            let kind = match b {
                b'0'..=b'9' => match self.number() {
                    Ok(kind) => kind,
                    Err(diag) => {
                        record(&mut diags, diag);
                        continue; // the malformed literal was consumed
                    }
                },
                b'A'..=b'Z' | b'a'..=b'z' | b'_' => self.ident(),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b'{' => self.one(TokenKind::LBrace),
                b'}' => self.one(TokenKind::RBrace),
                b'[' => self.one(TokenKind::LBracket),
                b']' => self.one(TokenKind::RBracket),
                b';' => self.one(TokenKind::Semi),
                b':' => self.one(TokenKind::Colon),
                b',' => self.one(TokenKind::Comma),
                b'@' => self.one(TokenKind::At),
                b'+' => self.one(TokenKind::Plus),
                b'*' => self.one(TokenKind::Star),
                b'/' => self.one(TokenKind::Slash),
                b'%' => self.one(TokenKind::Percent),
                b'=' => self.one_or_two(b'=', TokenKind::Assign, TokenKind::Eq),
                b'<' => self.one_or_two(b'=', TokenKind::Lt, TokenKind::Le),
                b'>' => self.one_or_two(b'=', TokenKind::Gt, TokenKind::Ge),
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        TokenKind::Ne
                    } else {
                        record(
                            &mut diags,
                            self.error_at(start, line, col, "expected `!=`")
                                .with_code(codes::LEX_BAD_OPERATOR),
                        );
                        continue;
                    }
                }
                b'-' => {
                    self.bump();
                    if self.peek() == Some(b'>') {
                        self.bump();
                        TokenKind::Arrow
                    } else {
                        TokenKind::Minus
                    }
                }
                b'.' => {
                    self.bump();
                    if self.peek() == Some(b'.') {
                        self.bump();
                        TokenKind::DotDot
                    } else {
                        record(
                            &mut diags,
                            self.error_at(start, line, col, "expected `..`")
                                .with_code(codes::LEX_BAD_OPERATOR),
                        );
                        continue;
                    }
                }
                other => {
                    self.bump();
                    record(
                        &mut diags,
                        self.error_at(
                            start,
                            line,
                            col,
                            format!("unexpected character `{}`", char::from(other)),
                        )
                        .with_code(codes::LEX_UNEXPECTED_CHAR),
                    );
                    continue;
                }
            };
            out.push(Token {
                kind,
                span: Span::new(start, self.pos, line, col),
            });
        }
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(b'\r') => {
                    self.bump();
                }
                Some(b'\n') => {
                    self.pos += 1;
                    self.line += 1;
                    self.col = 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => self.line_comment(),
                Some(b'-') if self.peek_at(1) == Some(b'-') => self.line_comment(),
                _ => return,
            }
        }
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek() {
            if b == b'\n' {
                return;
            }
            self.bump();
        }
    }

    fn number(&mut self) -> Result<TokenKind, Diagnostic> {
        let start = self.pos;
        let (line, col) = (self.line, self.col);
        if self.peek() == Some(b'0') && matches!(self.peek_at(1), Some(b'x') | Some(b'X')) {
            self.bump();
            self.bump();
            let hex_start = self.pos;
            while matches!(self.peek(), Some(b) if b.is_ascii_hexdigit()) {
                self.bump();
            }
            let digits = &self.src[hex_start..self.pos];
            return u64::from_str_radix(digits, 16)
                .map(TokenKind::Int)
                .map_err(|_| {
                self.error_at(start, line, col, "malformed hex literal")
                    .with_code(codes::LEX_BAD_LITERAL)
            });
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.bump();
        }
        // A float only if `.` is followed by a digit (so `1..3` stays two ints).
        if self.peek() == Some(b'.') && matches!(self.peek_at(1), Some(b) if b.is_ascii_digit()) {
            self.bump();
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.bump();
            }
            let text = &self.src[start..self.pos];
            return text
                .parse()
                .map(TokenKind::Float)
                .map_err(|_| {
                self.error_at(start, line, col, "malformed float literal")
                    .with_code(codes::LEX_BAD_LITERAL)
            });
        }
        let text = &self.src[start..self.pos];
        text.parse()
            .map(TokenKind::Int)
            .map_err(|_| {
                self.error_at(start, line, col, "integer literal out of range")
                    .with_code(codes::LEX_BAD_LITERAL)
            })
    }

    fn ident(&mut self) -> TokenKind {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.bump();
        }
        let text = &self.src[start..self.pos];
        TokenKind::keyword(text).unwrap_or_else(|| TokenKind::Ident(text.to_owned()))
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn one_or_two(&mut self, second: u8, single: TokenKind, double: TokenKind) -> TokenKind {
        self.bump();
        if self.peek() == Some(second) {
            self.bump();
            double
        } else {
            single
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, offset: usize) -> Option<u8> {
        self.bytes.get(self.pos + offset).copied()
    }

    fn bump(&mut self) {
        if self.pos < self.bytes.len() {
            self.pos += 1;
            self.col += 1;
        }
    }

    fn error_at(
        &self,
        start: usize,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic::new(
            Span::new(start, self.pos.max(start + 1), line, col),
            message,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("port in1 : in int<8>;"),
            vec![
                TokenKind::Port,
                TokenKind::Ident("in1".into()),
                TokenKind::Colon,
                TokenKind::In,
                TokenKind::IntType,
                TokenKind::Lt,
                TokenKind::Int(8),
                TokenKind::Gt,
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("== != <= >= -> .. = < >"),
            vec![
                TokenKind::Eq,
                TokenKind::Ne,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Arrow,
                TokenKind::DotDot,
                TokenKind::Assign,
                TokenKind::Lt,
                TokenKind::Gt,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn range_is_not_a_float() {
        assert_eq!(
            kinds("1..128"),
            vec![
                TokenKind::Int(1),
                TokenKind::DotDot,
                TokenKind::Int(128),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn float_for_probabilities() {
        assert_eq!(
            kinds("prob 0.5"),
            vec![TokenKind::Prob, TokenKind::Float(0.5), TokenKind::Eof]
        );
    }

    #[test]
    fn hex_literals() {
        assert_eq!(kinds("0xFF"), vec![TokenKind::Int(255), TokenKind::Eof]);
    }

    #[test]
    fn both_comment_styles_skipped() {
        assert_eq!(
            kinds("var x; // c++ style\n-- vhdl style\nvar y;"),
            vec![
                TokenKind::Var,
                TokenKind::Ident("x".into()),
                TokenKind::Semi,
                TokenKind::Var,
                TokenKind::Ident("y".into()),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn minus_vs_arrow() {
        assert_eq!(
            kinds("a - b -> c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("var\n  x;").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }

    #[test]
    fn unknown_character_is_an_error() {
        let err = lex("var #x;").unwrap_err();
        assert!(err.message().contains("unexpected character"));
        assert_eq!(err.span().col, 5);
    }

    #[test]
    fn at_lexes_as_a_token() {
        let tokens = lex("@allow(A006)").expect("lexes");
        assert_eq!(tokens[0].kind, TokenKind::At);
        assert_eq!(tokens[1].kind, TokenKind::Ident("allow".into()));
    }

    #[test]
    fn lone_bang_is_an_error() {
        assert!(lex("a ! b").is_err());
    }

    #[test]
    fn lone_dot_is_an_error() {
        assert!(lex("a . b").is_err());
    }

    #[test]
    fn empty_source_is_just_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("  \n\t "), vec![TokenKind::Eof]);
    }
}
