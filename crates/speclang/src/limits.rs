//! Resource caps for parsing hostile or pathological specifications.
//!
//! A specification that arrives over a network boundary (or from a fault
//! injector) can be arbitrarily large, arbitrarily token-dense, or nested
//! arbitrarily deep. Left unchecked, each of those is a denial of service
//! on the parser: memory for the token vector, stack for the recursive
//! descent, and time for all of it. [`ParseLimits`] turns each hazard
//! into a typed [`Diagnostic`](crate::Diagnostic) with the dedicated
//! [`codes::PARSE_LIMIT`](crate::codes::PARSE_LIMIT) code instead.
//!
//! The defaults are far above anything a legitimate specification needs
//! (the paper's largest benchmark is under 4 KiB of source) while still
//! small enough to bound worst-case work; the strict entry points
//! [`parse`](crate::parse) and [`parse_partial`](crate::parse_partial)
//! apply them implicitly.

/// Hard caps applied while parsing one specification.
///
/// # Examples
///
/// ```
/// use slif_speclang::{codes, parse_with_limits, ParseLimits};
///
/// let limits = ParseLimits::default().with_max_bytes(16);
/// let err = parse_with_limits("system WayTooLong;", &limits).unwrap_err();
/// assert_eq!(err.diagnostics()[0].code(), codes::PARSE_LIMIT);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct ParseLimits {
    /// Maximum source length in bytes; longer inputs are rejected before
    /// lexing (default 1 MiB).
    pub max_bytes: usize,
    /// Maximum token count; the stream is truncated at the cap and the
    /// truncation diagnosed (default 262 144).
    pub max_tokens: usize,
    /// Maximum nesting depth of blocks, `if` chains, and expressions
    /// (default 64).
    pub max_depth: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        Self {
            max_bytes: 1 << 20,
            max_tokens: 1 << 18,
            max_depth: 64,
        }
    }
}

impl ParseLimits {
    /// The default caps (1 MiB, 262 144 tokens, depth 64).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps the source length in bytes.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: usize) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// Caps the token count.
    #[must_use]
    pub fn with_max_tokens(mut self, max_tokens: usize) -> Self {
        self.max_tokens = max_tokens;
        self
    }

    /// Caps the nesting depth. A depth of 0 is treated as 1 (a flat
    /// behavior body is always parsable).
    #[must_use]
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let l = ParseLimits::default();
        assert_eq!(l.max_bytes, 1048576);
        assert_eq!(l.max_tokens, 262144);
        assert_eq!(l.max_depth, 64);
        assert_eq!(ParseLimits::new(), l);
    }

    #[test]
    fn builders_chain() {
        let l = ParseLimits::new()
            .with_max_bytes(100)
            .with_max_tokens(50)
            .with_max_depth(4);
        assert_eq!(l.max_bytes, 100);
        assert_eq!(l.max_tokens, 50);
        assert_eq!(l.max_depth, 4);
    }
}
