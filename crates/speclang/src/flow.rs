//! Statement-level control-flow programs for dataflow analysis.
//!
//! [`FlowProgram::from_spec`] lowers a parsed [`Spec`] into one small
//! control-flow graph per behavior: structured statements desugar into
//! branch/join nodes, `for` loops into an init/header/increment diamond
//! with an explicit back edge, `fork` into a parallel diamond, and a
//! `process` body into an infinite loop (body end → body start), so
//! locals persist across iterations exactly as they do at run time.
//!
//! The lowering is span-faithful (every node carries the span of the
//! statement it came from) but the per-behavior [`FlowBehavior::hash`]
//! is span-agnostic: two behaviors with identical structure hash equal
//! even when whitespace or surrounding declarations moved. The analysis
//! memo keys per-behavior results on that hash.
//!
//! `@allow(...)` annotations are collected into [`Suppressions`],
//! carried alongside the graphs so analysis passes can suppress
//! findings per declaration.

use crate::ast::{
    BehaviorDecl, BehaviorKind, BinOp, Direction, Expr, LValue, Spec, Stmt, Type, UnOp,
};
use crate::span::Span;
use std::collections::{BTreeMap, BTreeSet};

/// What kind of storage a [`SlotInfo`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// A formal parameter (initialized by the caller).
    Param,
    /// A behavior-local variable.
    Local,
    /// A `for` loop variable (initialized by the loop header).
    LoopVar,
    /// A system-level variable.
    Global,
    /// An external port with the given direction.
    Port(Direction),
}

/// One named storage location visible to a behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotInfo {
    /// The source name.
    pub name: String,
    /// Parameter, local, loop variable, global, or port.
    pub kind: SlotKind,
    /// Declared integer width in bits (element width for arrays); `None`
    /// for booleans and loop variables.
    pub width: Option<u32>,
    /// Whether the declared type is `bool`.
    pub is_bool: bool,
    /// Whether the declared type is an array.
    pub is_array: bool,
}

/// A side-effect-free expression over slots and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowExpr {
    /// An integer (or `true`/`false` as 1/0) constant; named constants
    /// are folded here during lowering.
    Const(i128),
    /// A read of a scalar slot.
    Slot(u32),
    /// A read of one element of an array slot.
    Index {
        /// The array slot.
        slot: u32,
        /// The element selector.
        index: Box<FlowExpr>,
    },
    /// A call in expression position (user function or builtin).
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<FlowExpr>,
    },
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<FlowExpr>,
        /// Right operand.
        rhs: Box<FlowExpr>,
    },
    /// A unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<FlowExpr>,
    },
    /// A name lowering could not resolve (only on unresolved specs).
    Unknown,
}

impl FlowExpr {
    /// Visits every slot this expression reads.
    pub fn for_each_use(&self, f: &mut dyn FnMut(u32)) {
        match self {
            FlowExpr::Const(_) | FlowExpr::Unknown => {}
            FlowExpr::Slot(s) => f(*s),
            FlowExpr::Index { slot, index } => {
                f(*slot);
                index.for_each_use(f);
            }
            FlowExpr::Call { args, .. } => {
                for a in args {
                    a.for_each_use(f);
                }
            }
            FlowExpr::Binary { lhs, rhs, .. } => {
                lhs.for_each_use(f);
                rhs.for_each_use(f);
            }
            FlowExpr::Unary { operand, .. } => operand.for_each_use(f),
        }
    }

    /// Whether the expression contains a call to a user-defined behavior
    /// (anything that is not a pure builtin), i.e. may have side effects.
    pub fn calls_user_code(&self) -> bool {
        match self {
            FlowExpr::Const(_) | FlowExpr::Slot(_) | FlowExpr::Unknown => false,
            FlowExpr::Index { index, .. } => index.calls_user_code(),
            FlowExpr::Call { callee, args } => {
                !is_builtin(callee) || args.iter().any(FlowExpr::calls_user_code)
            }
            FlowExpr::Binary { lhs, rhs, .. } => lhs.calls_user_code() || rhs.calls_user_code(),
            FlowExpr::Unary { operand, .. } => operand.calls_user_code(),
        }
    }
}

/// Whether `name` is one of the language builtins (`min`/`max`/`abs`).
pub fn is_builtin(name: &str) -> bool {
    crate::BUILTINS.iter().any(|(n, _)| *n == name)
}

/// The operation a [`FlowNode`] performs.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowOp {
    /// The unique entry node (always node 0).
    Entry,
    /// The unique exit node.
    Exit,
    /// A no-op merge/sequence point.
    Join,
    /// A write of `value` to `dst` (one element when `index` is set).
    Assign {
        /// Target slot.
        dst: u32,
        /// Element selector for array-element writes.
        index: Option<FlowExpr>,
        /// The stored value.
        value: FlowExpr,
    },
    /// A two-way branch: `succs[0]` is taken when `cond` holds, `succs[1]`
    /// otherwise.
    Branch {
        /// The branch condition.
        cond: FlowExpr,
        /// Whether this is a loop header (target of a back edge).
        loop_header: bool,
    },
    /// A statement-position call.
    Call {
        /// Callee name.
        callee: String,
        /// Actual arguments.
        args: Vec<FlowExpr>,
    },
    /// A message send.
    Send {
        /// Receiving behavior name.
        target: String,
        /// The payload.
        value: FlowExpr,
    },
    /// A message receive into `dst`.
    Receive {
        /// Target slot.
        dst: u32,
        /// Element selector for array-element targets.
        index: Option<FlowExpr>,
    },
    /// A return (edges to the exit node).
    Return {
        /// The returned value, for functions.
        value: Option<FlowExpr>,
    },
    /// A `wait` delay.
    Wait,
}

/// One node of a behavior's control-flow graph.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowNode {
    /// What the node does.
    pub op: FlowOp,
    /// The span of the source statement this node came from.
    pub span: Span,
    /// Whether the node was synthesized by desugaring (loop init,
    /// header test, increment, joins) rather than written by the user.
    pub synthetic: bool,
    /// Successor node indices.
    pub succs: Vec<u32>,
}

impl FlowNode {
    /// Visits every slot this node reads (including element selectors of
    /// indexed writes, which are reads).
    pub fn for_each_use(&self, f: &mut dyn FnMut(u32)) {
        match &self.op {
            FlowOp::Entry | FlowOp::Exit | FlowOp::Join | FlowOp::Wait => {}
            FlowOp::Assign { index, value, .. } => {
                if let Some(ix) = index {
                    ix.for_each_use(f);
                }
                value.for_each_use(f);
            }
            FlowOp::Branch { cond, .. } => cond.for_each_use(f),
            FlowOp::Call { args, .. } => {
                for a in args {
                    a.for_each_use(f);
                }
            }
            FlowOp::Send { value, .. } => value.for_each_use(f),
            FlowOp::Receive { index, .. } => {
                if let Some(ix) = index {
                    ix.for_each_use(f);
                }
            }
            FlowOp::Return { value } => {
                if let Some(v) = value {
                    v.for_each_use(f);
                }
            }
        }
    }

    /// The slot this node writes, if any, and whether the write is to a
    /// single array element (`true`) rather than the whole slot.
    pub fn def(&self) -> Option<(u32, bool)> {
        match &self.op {
            FlowOp::Assign { dst, index, .. } | FlowOp::Receive { dst, index } => {
                Some((*dst, index.is_some()))
            }
            _ => None,
        }
    }
}

/// The control-flow graph of one behavior.
#[derive(Debug, Clone)]
pub struct FlowBehavior {
    /// The behavior's name.
    pub name: String,
    /// Whether it is a concurrent `process`.
    pub is_process: bool,
    /// Declared return width for `func`s returning `int<N>`.
    pub ret_width: Option<u32>,
    /// All storage locations the behavior touches.
    pub slots: Vec<SlotInfo>,
    /// The graph; node 0 is [`FlowOp::Entry`].
    pub nodes: Vec<FlowNode>,
    /// The index of the [`FlowOp::Exit`] node.
    pub exit: u32,
    /// Targets of back edges — the points where iterative solvers widen.
    pub widen_points: Vec<u32>,
    /// Span-agnostic structural hash of the whole behavior; equal hashes
    /// mean per-behavior analysis results can be reused verbatim.
    pub hash: u64,
}

impl FlowBehavior {
    /// Predecessor lists, computed from [`FlowNode::succs`].
    pub fn preds(&self) -> Vec<Vec<u32>> {
        let mut preds = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &s in &n.succs {
                preds[s as usize].push(i as u32);
            }
        }
        preds
    }

    /// Names of user behaviors this one calls (statement or expression
    /// position), in first-occurrence order.
    pub fn callees(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for n in &self.nodes {
            collect_callees(&n.op, &mut out);
        }
        out
    }
}

fn collect_callees<'a>(op: &'a FlowOp, out: &mut Vec<&'a str>) {
    let mut visit_expr = |e: &'a FlowExpr| collect_expr_callees(e, out);
    match op {
        FlowOp::Assign { index, value, .. } => {
            if let Some(ix) = index {
                visit_expr(ix);
            }
            visit_expr(value);
        }
        FlowOp::Branch { cond, .. } => visit_expr(cond),
        FlowOp::Call { callee, args } => {
            if !is_builtin(callee) && !out.contains(&callee.as_str()) {
                out.push(callee);
            }
            for a in args {
                collect_expr_callees(a, out);
            }
        }
        FlowOp::Send { value, .. } => visit_expr(value),
        FlowOp::Return { value: Some(v) } => visit_expr(v),
        _ => {}
    }
}

fn collect_expr_callees<'a>(e: &'a FlowExpr, out: &mut Vec<&'a str>) {
    match e {
        FlowExpr::Call { callee, args } => {
            if !is_builtin(callee) && !out.contains(&callee.as_str()) {
                out.push(callee);
            }
            for a in args {
                collect_expr_callees(a, out);
            }
        }
        FlowExpr::Index { index, .. } => collect_expr_callees(index, out),
        FlowExpr::Binary { lhs, rhs, .. } => {
            collect_expr_callees(lhs, out);
            collect_expr_callees(rhs, out);
        }
        FlowExpr::Unary { operand, .. } => collect_expr_callees(operand, out),
        _ => {}
    }
}

/// `@allow(...)` suppressions collected from a [`Spec`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Suppressions {
    /// Lint codes suppressed per behavior name (whole-subtree).
    pub behaviors: BTreeMap<String, BTreeSet<String>>,
    /// Lint codes suppressed per system-variable name.
    pub vars: BTreeMap<String, BTreeSet<String>>,
}

impl Suppressions {
    /// Collects every `@allow` annotation in the specification.
    pub fn from_spec(spec: &Spec) -> Self {
        let mut s = Suppressions::default();
        for v in &spec.vars {
            if !v.allows.is_empty() {
                s.vars
                    .entry(v.name.clone())
                    .or_default()
                    .extend(v.allows.iter().cloned());
            }
        }
        for b in &spec.behaviors {
            if !b.allows.is_empty() {
                s.behaviors
                    .entry(b.name.clone())
                    .or_default()
                    .extend(b.allows.iter().cloned());
            }
        }
        s
    }

    /// Whether no annotation is present at all.
    pub fn is_empty(&self) -> bool {
        self.behaviors.is_empty() && self.vars.is_empty()
    }

    /// Whether `code` is suppressed for the named behavior.
    pub fn behavior_allows(&self, behavior: &str, code: &str) -> bool {
        self.behaviors
            .get(behavior)
            .is_some_and(|codes| codes.contains(code))
    }

    /// Whether `code` is suppressed for the named system variable.
    pub fn var_allows(&self, var: &str, code: &str) -> bool {
        self.vars.get(var).is_some_and(|codes| codes.contains(code))
    }

    /// A stable fingerprint of the whole suppression set; analysis memos
    /// treat a fingerprint change like a configuration change.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        for (name, codes) in &self.behaviors {
            h.str("b");
            h.str(name);
            for c in codes {
                h.str(c);
            }
        }
        for (name, codes) in &self.vars {
            h.str("v");
            h.str(name);
            for c in codes {
                h.str(c);
            }
        }
        h.finish()
    }
}

/// A whole specification lowered for dataflow analysis: one CFG per
/// behavior plus the collected suppressions.
#[derive(Debug, Clone)]
pub struct FlowProgram {
    /// Per-behavior graphs, in declaration order.
    pub behaviors: Vec<FlowBehavior>,
    /// `@allow` suppressions from the same specification.
    pub suppressions: Suppressions,
    index: BTreeMap<String, usize>,
}

impl FlowProgram {
    /// Lowers a parsed specification. Never fails: unresolved names
    /// lower to [`FlowExpr::Unknown`], which every analysis treats as
    /// "no information".
    pub fn from_spec(spec: &Spec) -> Self {
        let consts = fold_consts(spec);
        let globals = GlobalScope::new(spec);
        let behaviors: Vec<FlowBehavior> = spec
            .behaviors
            .iter()
            .map(|b| Builder::lower(b, &globals, &consts))
            .collect();
        let index = behaviors
            .iter()
            .enumerate()
            .map(|(i, b)| (b.name.clone(), i))
            .collect();
        FlowProgram {
            behaviors,
            suppressions: Suppressions::from_spec(spec),
            index,
        }
    }

    /// Looks up a behavior's graph by name.
    pub fn get(&self, name: &str) -> Option<&FlowBehavior> {
        self.index.get(name).map(|&i| &self.behaviors[i])
    }

    /// Behavior indices in callee-first (bottom-up) order: every callee
    /// precedes its callers; call cycles are broken at the back edge.
    /// Deterministic for a given program.
    pub fn bottom_up_order(&self) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.behaviors.len());
        let mut state = vec![0u8; self.behaviors.len()]; // 0 new, 1 open, 2 done
        for i in 0..self.behaviors.len() {
            self.post_order(i, &mut state, &mut order);
        }
        order
    }

    fn post_order(&self, i: usize, state: &mut [u8], order: &mut Vec<usize>) {
        if state[i] != 0 {
            return;
        }
        state[i] = 1;
        for callee in self.behaviors[i].callees() {
            if let Some(&j) = self.index.get(callee) {
                if state[j] == 0 {
                    self.post_order(j, state, order);
                }
            }
        }
        state[i] = 2;
        order.push(i);
    }
}

/// Evaluates every `const` declaration to an integer, in order, so later
/// constants can reference earlier ones.
fn fold_consts(spec: &Spec) -> BTreeMap<String, i128> {
    let mut consts = BTreeMap::new();
    for c in &spec.consts {
        if let Some(v) = eval_const(&c.value, &consts) {
            consts.insert(c.name.clone(), v);
        }
    }
    consts
}

fn eval_const(e: &Expr, consts: &BTreeMap<String, i128>) -> Option<i128> {
    match e {
        Expr::Int { value, .. } => Some(i128::from(*value)),
        Expr::Bool { value, .. } => Some(i128::from(*value)),
        Expr::Name { name, .. } => consts.get(name).copied(),
        Expr::Binary { op, lhs, rhs, .. } => {
            let l = eval_const(lhs, consts)?;
            let r = eval_const(rhs, consts)?;
            Some(match op {
                BinOp::Add => l.checked_add(r)?,
                BinOp::Sub => l.checked_sub(r)?,
                BinOp::Mul => l.checked_mul(r)?,
                BinOp::Div => l.checked_div(r)?,
                BinOp::Rem => l.checked_rem(r)?,
                BinOp::Eq => i128::from(l == r),
                BinOp::Ne => i128::from(l != r),
                BinOp::Lt => i128::from(l < r),
                BinOp::Le => i128::from(l <= r),
                BinOp::Gt => i128::from(l > r),
                BinOp::Ge => i128::from(l >= r),
                BinOp::And => i128::from(l != 0 && r != 0),
                BinOp::Or => i128::from(l != 0 || r != 0),
            })
        }
        Expr::Unary { op, operand, .. } => {
            let v = eval_const(operand, consts)?;
            Some(match op {
                UnOp::Neg => v.checked_neg()?,
                UnOp::Not => i128::from(v == 0),
            })
        }
        _ => None,
    }
}

struct GlobalScope {
    slots: BTreeMap<String, SlotInfo>,
}

impl GlobalScope {
    fn new(spec: &Spec) -> Self {
        let mut slots = BTreeMap::new();
        for p in &spec.ports {
            slots.insert(p.name.clone(), slot_info(&p.name, SlotKind::Port(p.direction), &p.ty));
        }
        for v in &spec.vars {
            slots.insert(v.name.clone(), slot_info(&v.name, SlotKind::Global, &v.ty));
        }
        GlobalScope { slots }
    }
}

fn slot_info(name: &str, kind: SlotKind, ty: &Type) -> SlotInfo {
    SlotInfo {
        name: name.to_owned(),
        kind,
        width: match *ty {
            Type::Int(bits) => Some(bits),
            Type::Bool => None,
            Type::Array { elem_bits, .. } => Some(elem_bits),
        },
        is_bool: matches!(ty, Type::Bool),
        is_array: ty.is_array(),
    }
}

struct Builder<'a> {
    globals: &'a GlobalScope,
    consts: &'a BTreeMap<String, i128>,
    slots: Vec<SlotInfo>,
    by_name: BTreeMap<String, u32>,
    nodes: Vec<FlowNode>,
    widen_points: Vec<u32>,
    exit: u32,
}

impl<'a> Builder<'a> {
    fn lower(
        decl: &BehaviorDecl,
        globals: &'a GlobalScope,
        consts: &'a BTreeMap<String, i128>,
    ) -> FlowBehavior {
        let mut b = Builder {
            globals,
            consts,
            slots: Vec::new(),
            by_name: BTreeMap::new(),
            nodes: Vec::new(),
            widen_points: Vec::new(),
            exit: 0,
        };
        for p in &decl.params {
            b.add_slot(slot_info(&p.name, SlotKind::Param, &p.ty));
        }
        for l in &decl.locals {
            b.add_slot(slot_info(&l.name, SlotKind::Local, &l.ty));
        }

        let entry = b.add(FlowOp::Entry, decl.span, true);
        let is_process = decl.kind == BehaviorKind::Process;
        let mut cur = entry;
        let top = if is_process {
            let top = b.add(FlowOp::Join, decl.span, true);
            b.edge(cur, top);
            cur = top;
            Some(top)
        } else {
            None
        };
        for stmt in &decl.body {
            cur = b.stmt(cur, stmt);
        }
        if let Some(top) = top {
            // The process repeats forever: body end feeds body start.
            b.edge(cur, top);
            b.widen_points.push(top);
        }
        let exit = b.add(FlowOp::Exit, decl.span, true);
        b.edge(cur, exit);
        b.exit = exit;
        // `return` nodes were built before the exit existed; wire them up.
        for i in 0..b.nodes.len() {
            if matches!(b.nodes[i].op, FlowOp::Return { .. }) && b.nodes[i].succs.is_empty() {
                b.nodes[i].succs.push(exit);
            }
        }
        b.widen_points.sort_unstable();
        b.widen_points.dedup();

        let ret_width = match &decl.kind {
            BehaviorKind::Function { ret: Type::Int(bits) } => Some(*bits),
            _ => None,
        };
        let mut fb = FlowBehavior {
            name: decl.name.clone(),
            is_process,
            ret_width,
            slots: b.slots,
            nodes: b.nodes,
            exit,
            widen_points: b.widen_points,
            hash: 0,
        };
        fb.hash = structural_hash(&fb);
        fb
    }

    fn add_slot(&mut self, info: SlotInfo) -> u32 {
        if let Some(&i) = self.by_name.get(&info.name) {
            return i;
        }
        let i = self.slots.len() as u32;
        self.by_name.insert(info.name.clone(), i);
        self.slots.push(info);
        i
    }

    /// Resolves a name to a slot, pulling in globals/ports lazily; named
    /// constants fold to `None` (the caller produces a constant).
    fn slot_of(&mut self, name: &str) -> Option<u32> {
        if let Some(&i) = self.by_name.get(name) {
            return Some(i);
        }
        if self.consts.contains_key(name) {
            return None;
        }
        let info = self.globals.slots.get(name)?.clone();
        Some(self.add_slot(info))
    }

    fn add(&mut self, op: FlowOp, span: Span, synthetic: bool) -> u32 {
        let i = self.nodes.len() as u32;
        self.nodes.push(FlowNode {
            op,
            span,
            synthetic,
            succs: Vec::new(),
        });
        i
    }

    fn edge(&mut self, from: u32, to: u32) {
        self.nodes[from as usize].succs.push(to);
    }

    fn stmt(&mut self, cur: u32, stmt: &Stmt) -> u32 {
        match stmt {
            Stmt::Assign { lhs, value, span } => {
                let value = self.expr(value);
                let n = self.lvalue_write(lhs, value, *span, false);
                self.edge(cur, n);
                n
            }
            Stmt::Call { callee, args, span } => {
                let args = args.iter().map(|a| self.expr(a)).collect();
                let n = self.add(
                    FlowOp::Call {
                        callee: callee.clone(),
                        args,
                    },
                    *span,
                    false,
                );
                self.edge(cur, n);
                n
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
                ..
            } => {
                let cond = self.expr(cond);
                let branch = self.add(
                    FlowOp::Branch {
                        cond,
                        loop_header: false,
                    },
                    *span,
                    false,
                );
                self.edge(cur, branch);
                let then_entry = self.add(FlowOp::Join, *span, true);
                let mut then_end = then_entry;
                for s in then_body {
                    then_end = self.stmt(then_end, s);
                }
                let else_entry = self.add(FlowOp::Join, *span, true);
                let mut else_end = else_entry;
                for s in else_body {
                    else_end = self.stmt(else_end, s);
                }
                self.edge(branch, then_entry);
                self.edge(branch, else_entry);
                let join = self.add(FlowOp::Join, *span, true);
                self.edge(then_end, join);
                self.edge(else_end, join);
                join
            }
            Stmt::For {
                var,
                lo,
                hi,
                body,
                span,
            } => {
                let lo = self.expr(lo);
                let hi = self.expr(hi);
                let iv = self.add_slot(SlotInfo {
                    name: var.clone(),
                    kind: SlotKind::LoopVar,
                    width: None,
                    is_bool: false,
                    is_array: false,
                });
                let init = self.add(
                    FlowOp::Assign {
                        dst: iv,
                        index: None,
                        value: lo,
                    },
                    *span,
                    true,
                );
                self.edge(cur, init);
                // Bounds are inclusive: `for i in lo .. hi` runs i = lo..=hi.
                let header = self.add(
                    FlowOp::Branch {
                        cond: FlowExpr::Binary {
                            op: BinOp::Le,
                            lhs: Box::new(FlowExpr::Slot(iv)),
                            rhs: Box::new(hi),
                        },
                        loop_header: true,
                    },
                    *span,
                    true,
                );
                self.edge(init, header);
                let body_entry = self.add(FlowOp::Join, *span, true);
                self.edge(header, body_entry);
                let mut end = body_entry;
                for s in body {
                    end = self.stmt(end, s);
                }
                let inc = self.add(
                    FlowOp::Assign {
                        dst: iv,
                        index: None,
                        value: FlowExpr::Binary {
                            op: BinOp::Add,
                            lhs: Box::new(FlowExpr::Slot(iv)),
                            rhs: Box::new(FlowExpr::Const(1)),
                        },
                    },
                    *span,
                    true,
                );
                self.edge(end, inc);
                self.edge(inc, header);
                self.widen_points.push(header);
                let after = self.add(FlowOp::Join, *span, true);
                self.edge(header, after);
                after
            }
            Stmt::While {
                cond, body, span, ..
            } => {
                let cond = self.expr(cond);
                let header = self.add(
                    FlowOp::Branch {
                        cond,
                        loop_header: true,
                    },
                    *span,
                    false,
                );
                self.edge(cur, header);
                let body_entry = self.add(FlowOp::Join, *span, true);
                self.edge(header, body_entry);
                let mut end = body_entry;
                for s in body {
                    end = self.stmt(end, s);
                }
                self.edge(end, header);
                self.widen_points.push(header);
                let after = self.add(FlowOp::Join, *span, true);
                self.edge(header, after);
                after
            }
            Stmt::Fork { body, span } => {
                let fork = self.add(FlowOp::Join, *span, true);
                self.edge(cur, fork);
                let join = self.add(FlowOp::Join, *span, true);
                if body.is_empty() {
                    self.edge(fork, join);
                } else {
                    for s in body {
                        let arm = self.stmt(fork, s);
                        self.edge(arm, join);
                    }
                }
                join
            }
            Stmt::Send {
                target,
                value,
                span,
            } => {
                let value = self.expr(value);
                let n = self.add(
                    FlowOp::Send {
                        target: target.clone(),
                        value,
                    },
                    *span,
                    false,
                );
                self.edge(cur, n);
                n
            }
            Stmt::Receive { lhs, span } => {
                let n = match self.slot_of(lhs.name()) {
                    Some(dst) => {
                        let index = match lhs {
                            LValue::Index { index, .. } => Some(self.expr(index)),
                            LValue::Name { .. } => None,
                        };
                        self.add(FlowOp::Receive { dst, index }, *span, false)
                    }
                    None => self.add(FlowOp::Join, *span, false),
                };
                self.edge(cur, n);
                n
            }
            Stmt::Return { value, span } => {
                let value = value.as_ref().map(|v| self.expr(v));
                let ret = self.add(FlowOp::Return { value }, *span, false);
                self.edge(cur, ret);
                // The return's edge to exit is patched in `lower`; code
                // after it starts a fresh (unreachable) chain.
                self.add(FlowOp::Join, *span, true)
            }
            Stmt::Wait { span, .. } => {
                let n = self.add(FlowOp::Wait, *span, false);
                self.edge(cur, n);
                n
            }
        }
    }

    fn lvalue_write(&mut self, lhs: &LValue, value: FlowExpr, span: Span, synthetic: bool) -> u32 {
        match self.slot_of(lhs.name()) {
            Some(dst) => {
                let index = match lhs {
                    LValue::Index { index, .. } => Some(self.expr(index)),
                    LValue::Name { .. } => None,
                };
                self.add(FlowOp::Assign { dst, index, value }, span, synthetic)
            }
            // Assignment to a constant or unknown name: no-op node so the
            // chain stays connected (the resolver reports the error).
            None => self.add(FlowOp::Join, span, synthetic),
        }
    }

    fn expr(&mut self, e: &Expr) -> FlowExpr {
        match e {
            Expr::Int { value, .. } => FlowExpr::Const(i128::from(*value)),
            Expr::Bool { value, .. } => FlowExpr::Const(i128::from(*value)),
            Expr::Name { name, .. } => {
                if let Some(&i) = self.by_name.get(name) {
                    return FlowExpr::Slot(i);
                }
                if let Some(&v) = self.consts.get(name) {
                    return FlowExpr::Const(v);
                }
                match self.slot_of(name) {
                    Some(i) => FlowExpr::Slot(i),
                    None => FlowExpr::Unknown,
                }
            }
            Expr::Index { name, index, .. } => {
                let index = Box::new(self.expr(index));
                match self.slot_of(name) {
                    Some(slot) => FlowExpr::Index { slot, index },
                    None => FlowExpr::Unknown,
                }
            }
            Expr::Call { callee, args, .. } => FlowExpr::Call {
                callee: callee.clone(),
                args: args.iter().map(|a| self.expr(a)).collect(),
            },
            Expr::Binary { op, lhs, rhs, .. } => FlowExpr::Binary {
                op: *op,
                lhs: Box::new(self.expr(lhs)),
                rhs: Box::new(self.expr(rhs)),
            },
            Expr::Unary { op, operand, .. } => FlowExpr::Unary {
                op: *op,
                operand: Box::new(self.expr(operand)),
            },
        }
    }
}

/// FNV-1a, the same cheap stable hash used elsewhere in the workspace.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
    fn u8(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }
    fn u32(&mut self, v: u32) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    fn i128(&mut self, v: i128) {
        for b in v.to_le_bytes() {
            self.u8(b);
        }
    }
    fn str(&mut self, s: &str) {
        self.u64(s.len() as u64);
        for b in s.as_bytes() {
            self.u8(*b);
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

fn structural_hash(b: &FlowBehavior) -> u64 {
    let mut h = Fnv::new();
    h.str(&b.name);
    h.u8(u8::from(b.is_process));
    h.u32(b.ret_width.map_or(u32::MAX, |w| w));
    for s in &b.slots {
        h.str(&s.name);
        h.u8(match s.kind {
            SlotKind::Param => 0,
            SlotKind::Local => 1,
            SlotKind::LoopVar => 2,
            SlotKind::Global => 3,
            SlotKind::Port(Direction::In) => 4,
            SlotKind::Port(Direction::Out) => 5,
            SlotKind::Port(Direction::Inout) => 6,
        });
        h.u32(s.width.map_or(u32::MAX, |w| w));
        h.u8(u8::from(s.is_bool));
        h.u8(u8::from(s.is_array));
    }
    for n in &b.nodes {
        h.u8(u8::from(n.synthetic));
        hash_op(&mut h, &n.op);
        h.u64(n.succs.len() as u64);
        for &s in &n.succs {
            h.u32(s);
        }
    }
    h.u32(b.exit);
    for &w in &b.widen_points {
        h.u32(w);
    }
    h.finish()
}

fn hash_op(h: &mut Fnv, op: &FlowOp) {
    match op {
        FlowOp::Entry => h.u8(0),
        FlowOp::Exit => h.u8(1),
        FlowOp::Join => h.u8(2),
        FlowOp::Assign { dst, index, value } => {
            h.u8(3);
            h.u32(*dst);
            h.u8(u8::from(index.is_some()));
            if let Some(ix) = index {
                hash_expr(h, ix);
            }
            hash_expr(h, value);
        }
        FlowOp::Branch { cond, loop_header } => {
            h.u8(4);
            h.u8(u8::from(*loop_header));
            hash_expr(h, cond);
        }
        FlowOp::Call { callee, args } => {
            h.u8(5);
            h.str(callee);
            for a in args {
                hash_expr(h, a);
            }
        }
        FlowOp::Send { target, value } => {
            h.u8(6);
            h.str(target);
            hash_expr(h, value);
        }
        FlowOp::Receive { dst, index } => {
            h.u8(7);
            h.u32(*dst);
            h.u8(u8::from(index.is_some()));
            if let Some(ix) = index {
                hash_expr(h, ix);
            }
        }
        FlowOp::Return { value } => {
            h.u8(8);
            h.u8(u8::from(value.is_some()));
            if let Some(v) = value {
                hash_expr(h, v);
            }
        }
        FlowOp::Wait => h.u8(9),
    }
}

fn hash_expr(h: &mut Fnv, e: &FlowExpr) {
    match e {
        FlowExpr::Const(v) => {
            h.u8(0);
            h.i128(*v);
        }
        FlowExpr::Slot(s) => {
            h.u8(1);
            h.u32(*s);
        }
        FlowExpr::Index { slot, index } => {
            h.u8(2);
            h.u32(*slot);
            hash_expr(h, index);
        }
        FlowExpr::Call { callee, args } => {
            h.u8(3);
            h.str(callee);
            h.u64(args.len() as u64);
            for a in args {
                hash_expr(h, a);
            }
        }
        FlowExpr::Binary { op, lhs, rhs } => {
            h.u8(4);
            h.u8(*op as u8);
            hash_expr(h, lhs);
            hash_expr(h, rhs);
        }
        FlowExpr::Unary { op, operand } => {
            h.u8(5);
            h.u8(*op as u8);
            hash_expr(h, operand);
        }
        FlowExpr::Unknown => h.u8(6),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn program(src: &str) -> FlowProgram {
        FlowProgram::from_spec(&parse(src).expect("parse"))
    }

    #[test]
    fn lowers_straight_line_process_with_back_edge() {
        let p = program(
            "system T;\nvar x : int<8>;\nprocess Main { x = 1; wait 10; }\n",
        );
        let main = p.get("Main").expect("Main");
        assert!(main.is_process);
        assert!(matches!(main.nodes[0].op, FlowOp::Entry));
        // entry → top → assign → wait → {top, exit}
        assert_eq!(main.widen_points, vec![1]);
        let wait = main
            .nodes
            .iter()
            .position(|n| matches!(n.op, FlowOp::Wait))
            .expect("wait node");
        assert!(main.nodes[wait].succs.contains(&1));
        assert!(main.nodes[wait].succs.contains(&main.exit));
    }

    #[test]
    fn for_loop_desugars_with_inclusive_header_and_widen_point() {
        let p = program(
            "system T;\nvar a : int<8>[10];\nproc P() { for i in 0 .. 9 { a[i] = i; } }\n",
        );
        let b = p.get("P").expect("P");
        let header = b
            .nodes
            .iter()
            .position(|n| matches!(n.op, FlowOp::Branch { loop_header: true, .. }))
            .expect("loop header");
        assert_eq!(b.widen_points, vec![header as u32]);
        let FlowOp::Branch { cond, .. } = &b.nodes[header].op else {
            unreachable!();
        };
        // i <= 9 (inclusive upper bound).
        assert!(
            matches!(cond, FlowExpr::Binary { op: BinOp::Le, rhs, .. }
                if **rhs == FlowExpr::Const(9)),
            "{cond:?}"
        );
        // Loop variable got a slot.
        assert!(b.slots.iter().any(|s| s.name == "i" && s.kind == SlotKind::LoopVar));
    }

    #[test]
    fn named_constants_fold_into_expressions() {
        let p = program(
            "system T;\nconst N = 4;\nconst M = N * 2;\nvar x : int<8>;\n\
             proc P() { x = M + 1; }\n",
        );
        let b = p.get("P").expect("P");
        let assign = b
            .nodes
            .iter()
            .find_map(|n| match &n.op {
                FlowOp::Assign { value, .. } => Some(value.clone()),
                _ => None,
            })
            .expect("assign");
        assert_eq!(
            assign,
            FlowExpr::Binary {
                op: BinOp::Add,
                lhs: Box::new(FlowExpr::Const(8)),
                rhs: Box::new(FlowExpr::Const(1)),
            }
        );
    }

    #[test]
    fn hash_is_span_agnostic_but_structure_sensitive() {
        let a = program("system T;\nvar x : int<8>;\nproc P() { x = 1; }\n");
        let b = program("system T;\n\n\nvar x : int<8>;\n\n\nproc   P() { x =   1; }\n");
        let c = program("system T;\nvar x : int<8>;\nproc P() { x = 2; }\n");
        assert_eq!(
            a.get("P").map(|p| p.hash),
            b.get("P").map(|p| p.hash),
            "whitespace must not change the hash"
        );
        assert_ne!(
            a.get("P").map(|p| p.hash),
            c.get("P").map(|p| p.hash),
            "a changed literal must change the hash"
        );
    }

    #[test]
    fn bottom_up_order_is_callee_first() {
        let p = program(
            "system T;\nvar x : int<8>;\n\
             func F(v : int<8>) -> int<8> { return v + 1; }\n\
             proc Mid() { x = F(x); }\n\
             process Main { call Mid(); }\n",
        );
        let order = p.bottom_up_order();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&i| p.behaviors[i].name == name)
                .expect("behavior in order")
        };
        assert!(pos("F") < pos("Mid"));
        assert!(pos("Mid") < pos("Main"));
    }

    #[test]
    fn suppressions_collect_and_fingerprint() {
        let p = program(
            "system T;\n@allow(A008)\nvar x : int<8>;\n\
             @allow(A006, A009)\nprocess Main { x = 1; }\n",
        );
        assert!(p.suppressions.var_allows("x", "A008"));
        assert!(p.suppressions.behavior_allows("Main", "A006"));
        assert!(p.suppressions.behavior_allows("Main", "A009"));
        assert!(!p.suppressions.behavior_allows("Main", "A007"));
        let q = program("system T;\nvar x : int<8>;\nprocess Main { x = 1; }\n");
        assert!(q.suppressions.is_empty());
        assert_ne!(p.suppressions.fingerprint(), q.suppressions.fingerprint());
    }

    #[test]
    fn return_wires_to_exit_and_code_after_is_disconnected() {
        let p = program(
            "system T;\nvar x : int<8>;\n\
             func F(v : int<8>) -> int<8> { return v; x = 3; }\n",
        );
        let b = p.get("F").expect("F");
        let ret = b
            .nodes
            .iter()
            .position(|n| matches!(n.op, FlowOp::Return { .. }))
            .expect("return");
        assert_eq!(b.nodes[ret].succs, vec![b.exit]);
        // The trailing assignment has no path from entry.
        let preds = b.preds();
        let assign = b
            .nodes
            .iter()
            .position(|n| matches!(n.op, FlowOp::Assign { .. }))
            .expect("assign");
        let mut reach = vec![false; b.nodes.len()];
        let mut stack = vec![0u32];
        while let Some(n) = stack.pop() {
            if reach[n as usize] {
                continue;
            }
            reach[n as usize] = true;
            stack.extend(&b.nodes[n as usize].succs);
        }
        assert!(!reach[assign], "code after return must be unreachable");
        let _ = preds;
    }

    #[test]
    fn corpus_lowers_without_unknowns() {
        for entry in crate::corpus::all() {
            let spec = parse(entry.source).expect("corpus parses");
            let p = FlowProgram::from_spec(&spec);
            for b in &p.behaviors {
                for n in &b.nodes {
                    let mut has_unknown = false;
                    n.for_each_use(&mut |_| {});
                    check_no_unknown(&n.op, &mut has_unknown);
                    assert!(
                        !has_unknown,
                        "{}::{} lowered with Unknown in {:?}",
                        entry.name, b.name, n.op
                    );
                }
            }
        }
    }

    fn check_no_unknown(op: &FlowOp, flag: &mut bool) {
        fn expr(e: &FlowExpr, flag: &mut bool) {
            match e {
                FlowExpr::Unknown => *flag = true,
                FlowExpr::Index { index, .. } => expr(index, flag),
                FlowExpr::Call { args, .. } => args.iter().for_each(|a| expr(a, flag)),
                FlowExpr::Binary { lhs, rhs, .. } => {
                    expr(lhs, flag);
                    expr(rhs, flag);
                }
                FlowExpr::Unary { operand, .. } => expr(operand, flag),
                _ => {}
            }
        }
        match op {
            FlowOp::Assign { index, value, .. } => {
                if let Some(ix) = index {
                    expr(ix, flag);
                }
                expr(value, flag);
            }
            FlowOp::Branch { cond, .. } => expr(cond, flag),
            FlowOp::Call { args, .. } => args.iter().for_each(|a| expr(a, flag)),
            FlowOp::Send { value, .. } => expr(value, flag),
            FlowOp::Return { value: Some(v) } => expr(v, flag),
            _ => {}
        }
    }
}
