//! Abstract syntax tree of the specification language.
//!
//! The language is a small VHDL-flavoured behavioural subset, sufficient
//! to express the paper's benchmark systems: a `system` with external
//! ports, system-level variables (scalars and arrays), and behaviors —
//! concurrent `process`es and callable `proc`/`func` procedures — whose
//! bodies use assignments, calls, branches with optional branch
//! probabilities, statically bounded loops, fork/join concurrency, and
//! message passing.

use crate::span::Span;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Type {
    /// Signed integer of the given bit width.
    Int(u32),
    /// Boolean (1 bit).
    Bool,
    /// Array of `len` integer elements, each `elem_bits` wide.
    Array {
        /// Element count.
        len: u64,
        /// Element width in bits.
        elem_bits: u32,
    },
}

impl Type {
    /// Bits transferred by one access of a value of this type, per the
    /// paper's rule: scalars their encoding width; arrays the element
    /// width plus the address bits needed to select an element.
    pub fn access_bits(&self) -> u32 {
        match *self {
            Type::Int(bits) => bits,
            Type::Bool => 1,
            Type::Array { len, elem_bits } => {
                elem_bits + (64 - len.saturating_sub(1).leading_zeros()).max(1)
            }
        }
    }

    /// Storage footprint: (words, bits per word).
    pub fn storage(&self) -> (u64, u32) {
        match *self {
            Type::Int(bits) => (1, bits),
            Type::Bool => (1, 1),
            Type::Array { len, elem_bits } => (len, elem_bits),
        }
    }

    /// Whether this is an array type.
    pub fn is_array(&self) -> bool {
        matches!(self, Type::Array { .. })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Type::Int(bits) => write!(f, "int<{bits}>"),
            Type::Bool => f.write_str("bool"),
            Type::Array { len, elem_bits } => write!(f, "int<{elem_bits}>[{len}]"),
        }
    }
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Input port.
    In,
    /// Output port.
    Out,
    /// Bidirectional port.
    Inout,
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Direction::In => "in",
            Direction::Out => "out",
            Direction::Inout => "inout",
        })
    }
}

/// An external port declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortDecl {
    /// Port name.
    pub name: String,
    /// Direction.
    pub direction: Direction,
    /// Data type (must be scalar).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A system-level variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDecl {
    /// Variable name.
    pub name: String,
    /// Data type.
    pub ty: Type,
    /// Lint codes an `@allow(...)` annotation suppresses for findings
    /// anchored to this variable (stable codes like `"A006"`, verbatim).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub allows: Vec<String>,
    /// Source location.
    pub span: Span,
}

/// A named compile-time constant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConstDecl {
    /// Constant name.
    pub name: String,
    /// Its value (a constant expression, evaluated by the resolver).
    pub value: Expr,
    /// Source location.
    pub span: Span,
}

/// What kind of behavior a declaration introduces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BehaviorKind {
    /// A concurrent process (no parameters, repeats forever).
    Process,
    /// A procedure without a return value.
    Procedure,
    /// A procedure with a return value (`func`).
    Function {
        /// The return type.
        ret: Type,
    },
}

/// A formal parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Parameter type (scalar).
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// A behavior declaration: process, procedure, or function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BehaviorDecl {
    /// Behavior name.
    pub name: String,
    /// Process / procedure / function.
    pub kind: BehaviorKind,
    /// Formal parameters (empty for processes).
    pub params: Vec<Param>,
    /// Behavior-local variables (not system-level objects).
    pub locals: Vec<VarDecl>,
    /// The statement body.
    pub body: Vec<Stmt>,
    /// Lint codes an `@allow(...)` annotation suppresses for this
    /// behavior's whole subtree (stable codes like `"A006"`, verbatim).
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub allows: Vec<String>,
    /// Source location.
    pub span: Span,
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Stmt {
    /// `lhs = expr;` — write of a variable, array element, or out-port.
    Assign {
        /// The write target.
        lhs: LValue,
        /// The value.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `call Name(args);`
    Call {
        /// The callee name.
        callee: String,
        /// The actual arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// `if cond [prob p] { .. } else { .. }`
    If {
        /// The branch condition.
        cond: Expr,
        /// Probability the then-branch is taken (profiling default 0.5).
        prob: Option<f64>,
        /// Then-branch statements.
        then_body: Vec<Stmt>,
        /// Else-branch statements (empty when absent).
        else_body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `for i in lo .. hi { .. }` — static inclusive bounds.
    For {
        /// Loop variable name.
        var: String,
        /// Lower bound (constant expression).
        lo: Expr,
        /// Upper bound (constant expression).
        hi: Expr,
        /// Body statements.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `while cond [iters n] { .. }` — data-dependent loop with a profiled
    /// iteration count.
    While {
        /// Loop condition.
        cond: Expr,
        /// Average iteration count (profiling default 1).
        iters: Option<f64>,
        /// Body statements.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `fork { stmt* }` — the statements (typically calls) may execute
    /// concurrently.
    Fork {
        /// The forked statements.
        body: Vec<Stmt>,
        /// Source location.
        span: Span,
    },
    /// `send Target expr;` — message pass to another process.
    Send {
        /// Receiving behavior name.
        target: String,
        /// The message payload.
        value: Expr,
        /// Source location.
        span: Span,
    },
    /// `receive lhs;` — receive a message into a variable.
    Receive {
        /// Where the message lands.
        lhs: LValue,
        /// Source location.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// The returned value (functions only).
        value: Option<Expr>,
        /// Source location.
        span: Span,
    },
    /// `wait n;` — time delay (ignored by estimation preprocessing except
    /// as a process-period marker).
    Wait {
        /// Delay amount in time units.
        amount: u64,
        /// Source location.
        span: Span,
    },
}

impl Stmt {
    /// The statement's source location.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Assign { span, .. }
            | Stmt::Call { span, .. }
            | Stmt::If { span, .. }
            | Stmt::For { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Fork { span, .. }
            | Stmt::Send { span, .. }
            | Stmt::Receive { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Wait { span, .. } => *span,
        }
    }
}

/// An assignable location.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LValue {
    /// A scalar name: variable, local, or out-port.
    Name {
        /// The name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// An array element.
    Index {
        /// The array name.
        name: String,
        /// The index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl LValue {
    /// The target's name.
    pub fn name(&self) -> &str {
        match self {
            LValue::Name { name, .. } | LValue::Index { name, .. } => name,
        }
    }

    /// The target's source location.
    pub fn span(&self) -> Span {
        match self {
            LValue::Name { span, .. } | LValue::Index { span, .. } => *span,
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
}

impl BinOp {
    /// Whether the operator yields a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// Whether the operator takes boolean operands.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "and",
            BinOp::Or => "or",
        })
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical negation.
    Not,
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            UnOp::Neg => "-",
            UnOp::Not => "not",
        })
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// Integer literal.
    Int {
        /// The value.
        value: u64,
        /// Source location.
        span: Span,
    },
    /// Boolean literal.
    Bool {
        /// The value.
        value: bool,
        /// Source location.
        span: Span,
    },
    /// A name: variable, local, parameter, constant, or in-port read.
    Name {
        /// The name.
        name: String,
        /// Source location.
        span: Span,
    },
    /// Array element read.
    Index {
        /// The array name.
        name: String,
        /// The index expression.
        index: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Function (or builtin `min`/`max`/`abs`) call.
    Call {
        /// The callee name.
        callee: String,
        /// The actual arguments.
        args: Vec<Expr>,
        /// Source location.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source location.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// The operand.
        operand: Box<Expr>,
        /// Source location.
        span: Span,
    },
}

impl Expr {
    /// The expression's source location.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int { span, .. }
            | Expr::Bool { span, .. }
            | Expr::Name { span, .. }
            | Expr::Index { span, .. }
            | Expr::Call { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. } => *span,
        }
    }
}

/// A complete specification: one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Spec {
    /// The system name.
    pub name: String,
    /// External ports.
    pub ports: Vec<PortDecl>,
    /// Named constants.
    pub consts: Vec<ConstDecl>,
    /// System-level variables.
    pub vars: Vec<VarDecl>,
    /// Behaviors: processes, procedures, functions.
    pub behaviors: Vec<BehaviorDecl>,
}

/// Applies `f` to every [`Span`] in a subtree, in a fixed preorder walk.
/// This is the one traversal behind span rebasing (dirty-region reparse)
/// and span stripping (structural AST comparison).
pub trait ForEachSpan {
    /// Visits every span in the subtree.
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span));

    /// Sets every span in the subtree to [`Span::dummy`].
    fn strip_spans(&mut self) {
        self.for_each_span(&mut |s| *s = Span::dummy());
    }

    /// Rebases every span in the subtree by a byte and line delta (columns
    /// untouched), saturating via [`Span::rebased`].
    fn rebase_spans(&mut self, byte_delta: isize, line_delta: i64) {
        self.for_each_span(&mut |s| *s = s.rebased(byte_delta, line_delta));
    }
}

impl ForEachSpan for PortDecl {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        f(&mut self.span);
    }
}

impl ForEachSpan for VarDecl {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        f(&mut self.span);
    }
}

impl ForEachSpan for ConstDecl {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        f(&mut self.span);
        self.value.for_each_span(f);
    }
}

impl ForEachSpan for BehaviorDecl {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        f(&mut self.span);
        for p in &mut self.params {
            f(&mut p.span);
        }
        for l in &mut self.locals {
            l.for_each_span(f);
        }
        for s in &mut self.body {
            s.for_each_span(f);
        }
    }
}

impl ForEachSpan for LValue {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        match self {
            LValue::Name { span, .. } => f(span),
            LValue::Index { span, index, .. } => {
                f(span);
                index.for_each_span(f);
            }
        }
    }
}

impl ForEachSpan for Expr {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        match self {
            Expr::Int { span, .. } | Expr::Bool { span, .. } | Expr::Name { span, .. } => f(span),
            Expr::Index { span, index, .. } => {
                f(span);
                index.for_each_span(f);
            }
            Expr::Call { span, args, .. } => {
                f(span);
                for a in args {
                    a.for_each_span(f);
                }
            }
            Expr::Binary { span, lhs, rhs, .. } => {
                f(span);
                lhs.for_each_span(f);
                rhs.for_each_span(f);
            }
            Expr::Unary { span, operand, .. } => {
                f(span);
                operand.for_each_span(f);
            }
        }
    }
}

impl ForEachSpan for Stmt {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        match self {
            Stmt::Assign { lhs, value, span } => {
                f(span);
                lhs.for_each_span(f);
                value.for_each_span(f);
            }
            Stmt::Call { args, span, .. } => {
                f(span);
                for a in args {
                    a.for_each_span(f);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
                ..
            } => {
                f(span);
                cond.for_each_span(f);
                for s in then_body {
                    s.for_each_span(f);
                }
                for s in else_body {
                    s.for_each_span(f);
                }
            }
            Stmt::For {
                lo, hi, body, span, ..
            } => {
                f(span);
                lo.for_each_span(f);
                hi.for_each_span(f);
                for s in body {
                    s.for_each_span(f);
                }
            }
            Stmt::While {
                cond, body, span, ..
            } => {
                f(span);
                cond.for_each_span(f);
                for s in body {
                    s.for_each_span(f);
                }
            }
            Stmt::Fork { body, span } => {
                f(span);
                for s in body {
                    s.for_each_span(f);
                }
            }
            Stmt::Send { value, span, .. } => {
                f(span);
                value.for_each_span(f);
            }
            Stmt::Receive { lhs, span } => {
                f(span);
                lhs.for_each_span(f);
            }
            Stmt::Return { value, span } => {
                f(span);
                if let Some(v) = value {
                    v.for_each_span(f);
                }
            }
            Stmt::Wait { span, .. } => f(span),
        }
    }
}

impl ForEachSpan for Spec {
    fn for_each_span(&mut self, f: &mut dyn FnMut(&mut Span)) {
        for p in &mut self.ports {
            p.for_each_span(f);
        }
        for c in &mut self.consts {
            c.for_each_span(f);
        }
        for v in &mut self.vars {
            v.for_each_span(f);
        }
        for b in &mut self.behaviors {
            b.for_each_span(f);
        }
    }
}

/// Structural equality ignoring source locations: both sides are cloned,
/// span-stripped, and compared. Two parses of the same text at different
/// offsets are `eq_modulo_spans` but not `==`.
pub fn eq_modulo_spans<T: ForEachSpan + Clone + PartialEq>(a: &T, b: &T) -> bool {
    let mut a = a.clone();
    let mut b = b.clone();
    a.strip_spans();
    b.strip_spans();
    a == b
}

impl Spec {
    /// Finds a behavior by name.
    pub fn behavior(&self, name: &str) -> Option<&BehaviorDecl> {
        self.behaviors.iter().find(|b| b.name == name)
    }

    /// Counts the system-level functional objects this spec will produce
    /// in SLIF: behaviors plus system-level variables (the "BV" column of
    /// the paper's Figure 4).
    pub fn bv_count(&self) -> usize {
        self.behaviors.len() + self.vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_bits_scalar_is_width() {
        assert_eq!(Type::Int(8).access_bits(), 8);
        assert_eq!(Type::Int(32).access_bits(), 32);
        assert_eq!(Type::Bool.access_bits(), 1);
    }

    #[test]
    fn access_bits_array_adds_address_bits() {
        // 128 elements → 7 address bits; 8 data bits → 15 total (the
        // paper's Figure 3 example).
        assert_eq!(
            Type::Array {
                len: 128,
                elem_bits: 8
            }
            .access_bits(),
            15
        );
        // 384 elements → ceil(log2(384)) = 9 → 17.
        assert_eq!(
            Type::Array {
                len: 384,
                elem_bits: 8
            }
            .access_bits(),
            17
        );
        // Degenerate 1-element array still needs one address bit.
        assert_eq!(
            Type::Array {
                len: 1,
                elem_bits: 8
            }
            .access_bits(),
            9
        );
    }

    #[test]
    fn storage_shapes() {
        assert_eq!(Type::Int(16).storage(), (1, 16));
        assert_eq!(
            Type::Array {
                len: 384,
                elem_bits: 8
            }
            .storage(),
            (384, 8)
        );
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Int(8).to_string(), "int<8>");
        assert_eq!(
            Type::Array {
                len: 384,
                elem_bits: 8
            }
            .to_string(),
            "int<8>[384]"
        );
        assert_eq!(Type::Bool.to_string(), "bool");
    }

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn spec_bv_count_counts_behaviors_and_vars() {
        let spec = Spec {
            name: "t".into(),
            ports: vec![],
            consts: vec![],
            vars: vec![VarDecl {
                name: "v".into(),
                ty: Type::Int(8),
                allows: vec![],
                span: Span::dummy(),
            }],
            behaviors: vec![BehaviorDecl {
                name: "Main".into(),
                kind: BehaviorKind::Process,
                params: vec![],
                locals: vec![],
                body: vec![],
                allows: vec![],
                span: Span::dummy(),
            }],
        };
        assert_eq!(spec.bv_count(), 2);
        assert!(spec.behavior("Main").is_some());
        assert!(spec.behavior("nope").is_none());
    }
}
