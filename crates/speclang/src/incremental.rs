//! Dirty-region reparsing for edit sessions.
//!
//! [`reparse_with_edit`] splices a byte-range edit into a previously
//! parsed source and reparses only the top-level items the edit touches,
//! rebasing every downstream [`Span`](crate::Span) by the byte/line
//! delta. The result is *exactly* `parse_partial(new_source)` — spans
//! included — property-tested below; the incremental path exists purely
//! to skip re-lexing and re-parsing the untouched items.
//!
//! The region rules (any violation falls back to a full reparse, which
//! is always correct):
//!
//! * The previous parse of `old_source` must have been clean; a session
//!   holding a broken document reparses from scratch anyway.
//! * Item extents are `[start_i, start_{i+1})` over the starts of the
//!   top-level declarations in source order; the tail extent runs to end
//!   of file and the header region `[0, start_0)` is never incremental.
//! * The edit interval and extents intersect as *closed* intervals, so
//!   an insert exactly on a boundary reparses both neighbors.
//! * Both region boundaries must sit at a line start (the byte before is
//!   `\n`, unchanged by the edit, or the region touches offset 0 / EOF).
//!   This keeps token columns valid and — because comments run to end of
//!   line — guarantees a standalone lex of the region tokenizes exactly
//!   like the full text.
//! * Any lexical or syntactic diagnostic inside the region aborts to a
//!   full reparse, so error *reporting* is always whole-file and the
//!   incremental path only ever produces clean parses.

use crate::ast::{ForEachSpan, Spec};
use crate::diag::Diagnostic;
use crate::lexer::lex_recovering;
use crate::limits::ParseLimits;
use crate::parser::{parse_items_region, parse_partial_with_limits};
use std::fmt;

/// One contiguous text replacement: bytes `[start, end)` of the old
/// source are replaced with `text` (pure insert when `start == end`,
/// pure delete when `text` is empty).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EditDelta {
    /// Byte offset where the replaced range begins.
    pub start: usize,
    /// Byte offset one past the replaced range (`>= start`).
    pub end: usize,
    /// Replacement text.
    pub text: String,
}

impl EditDelta {
    /// Convenience constructor.
    pub fn new(start: usize, end: usize, text: impl Into<String>) -> Self {
        Self {
            start,
            end,
            text: text.into(),
        }
    }

    /// The signed change in source length this edit causes.
    pub fn byte_delta(&self) -> isize {
        self.text.len() as isize - (self.end - self.start) as isize
    }

    /// Validates this edit against `source` and returns the spliced
    /// text. This is the splice [`reparse_with_edit`] performs; sessions
    /// holding a *broken* document (no clean AST to reparse against) use
    /// it directly and follow with a full parse.
    ///
    /// # Errors
    ///
    /// [`EditError`] when the byte range is out of bounds or splits a
    /// UTF-8 character; `source` is untouched either way.
    pub fn apply(&self, source: &str) -> Result<String, EditError> {
        if self.start > self.end || self.end > source.len() {
            return Err(EditError::OutOfBounds {
                start: self.start,
                end: self.end,
                len: source.len(),
            });
        }
        for offset in [self.start, self.end] {
            if !source.is_char_boundary(offset) {
                return Err(EditError::NotCharBoundary { offset });
            }
        }
        let mut new_source = String::with_capacity(source.len().saturating_add(self.text.len()));
        new_source.push_str(&source[..self.start]);
        new_source.push_str(&self.text);
        new_source.push_str(&source[self.end..]);
        Ok(new_source)
    }
}

/// A structurally invalid [`EditDelta`]: the session cannot even splice
/// the text, let alone reparse it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// `start > end`, or `end` past the end of the source.
    OutOfBounds {
        /// The offending range start.
        start: usize,
        /// The offending range end.
        end: usize,
        /// Length of the source being edited.
        len: usize,
    },
    /// `start` or `end` splits a multi-byte UTF-8 character.
    NotCharBoundary {
        /// The offset that is not a character boundary.
        offset: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::OutOfBounds { start, end, len } => write!(
                f,
                "edit range {start}..{end} is invalid for a {len}-byte source"
            ),
            EditError::NotCharBoundary { offset } => {
                write!(f, "edit offset {offset} splits a UTF-8 character")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// How much of the document a reparse covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReparseScope {
    /// The whole document was re-lexed and re-parsed.
    Full,
    /// Only `[start, end)` of the *new* source was re-lexed and
    /// re-parsed; everything outside was spliced and span-rebased.
    Region {
        /// Region start byte in the new source.
        start: usize,
        /// Region end byte in the new source.
        end: usize,
    },
}

/// The outcome of [`reparse_with_edit`]: the spliced source, its AST,
/// any diagnostics (only ever non-empty on a [`ReparseScope::Full`]
/// fallback), and which scope produced it.
#[derive(Debug)]
pub struct Reparse {
    /// The new source text after the edit.
    pub source: String,
    /// Best-effort AST of the new source.
    pub spec: Spec,
    /// Every diagnostic of the new source (empty when clean).
    pub diags: Vec<Diagnostic>,
    /// Whether the incremental path applied.
    pub scope: ReparseScope,
}

/// Applies `delta` to `old_source` (whose clean parse is `old_spec`) and
/// reparses, incrementally when the edit is confined to a run of
/// top-level items and fully otherwise. The returned `(source, spec,
/// diags)` are exactly what [`parse_partial_with_limits`] on the spliced
/// text would produce.
///
/// # Errors
///
/// [`EditError`] when the delta's byte range is out of bounds or splits
/// a UTF-8 character; the source is left untouched by such an edit.
pub fn reparse_with_edit(
    old_source: &str,
    old_spec: &Spec,
    delta: &EditDelta,
    limits: &ParseLimits,
) -> Result<Reparse, EditError> {
    reparse_with_edit_owned(old_source, old_spec.clone(), delta, limits).map_err(|(_, e)| e)
}

/// [`reparse_with_edit`] consuming the previous AST, so the untouched
/// declarations are *moved* into the result instead of cloned — the
/// difference between O(edit) and O(document) on the incremental path.
/// Callers that keep the AST between edits (edit sessions) should use
/// this form; the error hands the AST back unchanged.
///
/// # Errors
///
/// The unconsumed `old_spec` paired with the [`EditError`] that
/// [`reparse_with_edit`] would have returned.
#[allow(clippy::result_large_err)]
pub fn reparse_with_edit_owned(
    old_source: &str,
    old_spec: Spec,
    delta: &EditDelta,
    limits: &ParseLimits,
) -> Result<Reparse, (Spec, EditError)> {
    let new_source = match delta.apply(old_source) {
        Ok(s) => s,
        Err(e) => return Err((old_spec, e)),
    };

    match try_region_reparse(old_source, old_spec, delta, &new_source, limits) {
        Ok(reparse) => Ok(reparse),
        Err(_old_spec) => {
            let (spec, diags) = parse_partial_with_limits(&new_source, limits);
            Ok(Reparse {
                source: new_source,
                spec,
                diags,
                scope: ReparseScope::Full,
            })
        }
    }
}

/// The incremental path; `Err` hands the AST back for the full-reparse
/// fallback (every bail happens before any mutation).
fn try_region_reparse(
    old_source: &str,
    old_spec: Spec,
    delta: &EditDelta,
    new_source: &str,
    limits: &ParseLimits,
) -> Result<Reparse, Spec> {
    // Any token is at least one byte, so a source under `max_tokens`
    // bytes cannot trip the token cap: both limit checks reduce to
    // byte-length guards here.
    if new_source.len() > limits.max_bytes || new_source.len() > limits.max_tokens {
        return Err(old_spec);
    }

    // Top-level item starts in source order; extents tile the file from
    // the first item to EOF, and `[0, starts[0])` is the header region.
    let mut starts: Vec<usize> = Vec::with_capacity(
        old_spec.ports.len()
            + old_spec.consts.len()
            + old_spec.vars.len()
            + old_spec.behaviors.len(),
    );
    starts.extend(old_spec.ports.iter().map(|p| p.span.start));
    starts.extend(old_spec.consts.iter().map(|c| c.span.start));
    starts.extend(old_spec.vars.iter().map(|v| v.span.start));
    starts.extend(old_spec.behaviors.iter().map(|b| b.span.start));
    starts.sort_unstable();
    if starts.is_empty() || starts.windows(2).any(|w| w[0] >= w[1]) {
        return Err(old_spec);
    }
    // An edit touching the header region (or the closed boundary of the
    // first item, handled below) is never incremental.
    if delta.start < starts[0] {
        return Err(old_spec);
    }

    let old_bytes = old_source.as_bytes();
    let n = starts.len();
    // Closed-interval intersection of the edit [start, end] with the
    // extents: `lo` is the last item starting at or before the edit, and
    // an edit landing exactly on a boundary also dirties the item before
    // it.
    let mut lo = starts.partition_point(|&s| s <= delta.start) - 1;
    if starts[lo] == delta.start {
        if lo == 0 {
            return Err(old_spec);
        }
        lo -= 1;
    }
    let mut hi = starts.partition_point(|&s| s <= delta.end) - 1;

    // Extend backward until the region starts at a line start (needed
    // for token columns and comment isolation).
    let mut region_start = starts[lo];
    loop {
        if region_start == 0 || old_bytes[region_start - 1] == b'\n' {
            break;
        }
        if lo == 0 {
            return Err(old_spec);
        }
        lo -= 1;
        region_start = starts[lo];
    }
    // Extend forward until the region ends at a line start that the edit
    // did not touch (so old and new agree on the boundary byte), or EOF.
    while hi < n - 1 {
        let boundary = starts[hi + 1] - 1;
        if boundary >= delta.end && old_bytes[boundary] == b'\n' {
            break;
        }
        hi += 1;
    }
    let region_end_old = if hi == n - 1 { old_source.len() } else { starts[hi + 1] };

    let byte_delta = delta.byte_delta();
    let new_region_end = if hi == n - 1 {
        new_source.len()
    } else {
        offset_by(region_end_old, byte_delta)
    };
    let old_region = &old_source[region_start..region_end_old];
    let new_region = &new_source[region_start..new_region_end];
    let line_delta =
        count_newlines(new_region.as_bytes()) as i64 - count_newlines(old_region.as_bytes()) as i64;
    // 1-based line of the region start; the prefix is untouched so old
    // and new agree.
    let region_line =
        u32::try_from(1 + count_newlines(&old_bytes[..region_start])).unwrap_or(u32::MAX);

    // Lex and parse the region standalone. The region starts at a line
    // start, so token lines shift by `region_line - 1` and columns are
    // already correct. Any diagnostic aborts to a full reparse.
    let (mut tokens, lex_diags) = lex_recovering(new_region);
    if !lex_diags.is_empty() {
        return Err(old_spec);
    }
    let line_shift = region_line.saturating_sub(1);
    for t in &mut tokens {
        t.span.start = t.span.start.saturating_add(region_start);
        t.span.end = t.span.end.saturating_add(region_start);
        t.span.line = t.span.line.saturating_add(line_shift);
    }
    let (items, diags) = parse_items_region(tokens, Vec::new(), limits);
    if !diags.is_empty() {
        return Err(old_spec);
    }

    // Splice each category in place: untouched items before the region
    // are kept (moved, not cloned), items inside it are replaced by the
    // region's fresh parse, and items after it are span-rebased by the
    // byte/line delta. All the bails are behind us, so the mutation
    // cannot leave a half-spliced AST behind.
    let mut spec = old_spec;
    splice(
        &mut spec.ports,
        items.ports,
        |p| p.span.start,
        region_start,
        region_end_old,
        byte_delta,
        line_delta,
    );
    splice(
        &mut spec.consts,
        items.consts,
        |c| c.span.start,
        region_start,
        region_end_old,
        byte_delta,
        line_delta,
    );
    splice(
        &mut spec.vars,
        items.vars,
        |v| v.span.start,
        region_start,
        region_end_old,
        byte_delta,
        line_delta,
    );
    splice(
        &mut spec.behaviors,
        items.behaviors,
        |b| b.span.start,
        region_start,
        region_end_old,
        byte_delta,
        line_delta,
    );
    Ok(Reparse {
        source: new_source.to_owned(),
        spec,
        diags: Vec::new(),
        scope: ReparseScope::Region {
            start: region_start,
            end: new_region_end,
        },
    })
}

/// Rebuilds one declaration category around the reparsed region, in
/// place: items starting before the region are kept as-is, items inside
/// it are replaced by the region's fresh parse (whose spans are already
/// final), and items at or after its old end are kept with rebased
/// spans. `old` is in source order (the clean-parse precondition), so
/// the region maps to one contiguous range.
fn splice<T: ForEachSpan>(
    old: &mut Vec<T>,
    region: Vec<T>,
    start_of: impl Fn(&T) -> usize,
    region_start: usize,
    region_end_old: usize,
    byte_delta: isize,
    line_delta: i64,
) {
    let lo = old.partition_point(|it| start_of(it) < region_start);
    let hi = old.partition_point(|it| start_of(it) < region_end_old);
    for it in &mut old[hi..] {
        it.rebase_spans(byte_delta, line_delta);
    }
    old.splice(lo..hi, region);
}

/// `base + delta` where the result is known in-bounds; saturates rather
/// than wrapping if a caller bug violates that.
fn offset_by(base: usize, delta: isize) -> usize {
    if delta >= 0 {
        base.saturating_add(delta as usize)
    } else {
        base.saturating_sub(delta.unsigned_abs())
    }
}

fn count_newlines(bytes: &[u8]) -> usize {
    bytes.iter().filter(|&&b| b == b'\n').count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_partial;

    const BASE: &str = concat!(
        "system Demo;\n",
        "port in1 : in int<8>;\n",
        "const K = 4;\n",
        "var shared : int<8>;\n",
        "func Helper(x : int<8>) -> int<8> { return x + K; }\n",
        "process Main {\n  var t : int<8>;\n  t = Helper(in1);\n  shared = t;\n  wait 5;\n}\n",
        "process Aux { shared = 0; wait 9; }\n",
    );

    fn check(delta: EditDelta, expect_region: bool) {
        let (old_spec, old_diags) = parse_partial(BASE);
        assert!(old_diags.is_empty(), "fixture must parse cleanly");
        let got = reparse_with_edit(BASE, &old_spec, &delta, &ParseLimits::default())
            .expect("valid delta");
        let mut expected = String::from(&BASE[..delta.start]);
        expected.push_str(&delta.text);
        expected.push_str(&BASE[delta.end..]);
        assert_eq!(got.source, expected);
        let (cold_spec, cold_diags) = parse_partial(&expected);
        assert_eq!(got.spec, cold_spec, "incremental AST == cold AST, spans included");
        assert_eq!(got.diags, cold_diags);
        match got.scope {
            ReparseScope::Region { .. } => {
                assert!(expect_region, "expected full reparse, got region")
            }
            ReparseScope::Full => assert!(!expect_region, "expected region reparse, got full"),
        }
    }

    #[test]
    fn body_edit_is_regional_and_matches_cold() {
        let at = BASE.find("wait 5").expect("fixture");
        check(EditDelta::new(at, at + "wait 5".len(), "wait 42"), true);
    }

    #[test]
    fn multi_line_growth_rebases_downstream_spans() {
        let at = BASE.find("shared = t;").expect("fixture");
        check(
            EditDelta::new(at, at, "shared = t + 1;\n  shared = shared;\n  "),
            true,
        );
    }

    #[test]
    fn deleting_an_item_matches_cold() {
        let s = BASE.find("const K = 4;\n").expect("fixture");
        // Deleting `K` breaks Helper's body at resolve time, not parse
        // time, so this stays a clean regional reparse.
        check(EditDelta::new(s, s + "const K = 4;\n".len(), ""), true);
    }

    #[test]
    fn inserting_a_new_item_between_items_matches_cold() {
        let at = BASE.find("process Main").expect("fixture");
        check(EditDelta::new(at, at, "var extra : int<4>;\n"), true);
    }

    #[test]
    fn header_edit_falls_back_to_full() {
        check(EditDelta::new(7, 11, "Edited"), false);
    }

    #[test]
    fn edit_introducing_parse_error_falls_back_to_full() {
        let at = BASE.find("wait 9").expect("fixture");
        check(EditDelta::new(at, at + 6, "wait {{"), false);
    }

    #[test]
    fn mid_line_item_boundary_falls_back_or_matches() {
        // Two items on one line: the second doesn't start at a line
        // start, so editing it must widen to the first or go full —
        // either way the result matches cold.
        let src = "system S;\nvar a : int<8>; var b : int<8>;\nprocess P { a = b; }\n";
        let (spec, diags) = parse_partial(src);
        assert!(diags.is_empty());
        let at = src.find("int<8>;\np").expect("fixture");
        let delta = EditDelta::new(at, at + 6, "int<4>");
        let got = reparse_with_edit(src, &spec, &delta, &ParseLimits::default())
            .expect("valid delta");
        let (cold, _) = parse_partial(&got.source);
        assert_eq!(got.spec, cold);
    }

    #[test]
    fn out_of_bounds_and_split_char_edits_are_rejected() {
        let (spec, _) = parse_partial(BASE);
        let err = reparse_with_edit(
            BASE,
            &spec,
            &EditDelta::new(5, BASE.len() + 1, ""),
            &ParseLimits::default(),
        )
        .expect_err("past EOF");
        assert!(matches!(err, EditError::OutOfBounds { .. }));
        let src = "system Sé;\nvar x : int<8>;\nprocess P { x = 0; }\n";
        let (spec2, _) = parse_partial(src);
        let bad = src.find('é').expect("fixture") + 1;
        let err = reparse_with_edit(
            src,
            &spec2,
            &EditDelta::new(bad, bad, "y"),
            &ParseLimits::default(),
        )
        .expect_err("mid-char");
        assert!(matches!(err, EditError::NotCharBoundary { .. }));
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Long random edit sequences — including edits that break the
        /// parse and later edits that happen to fix it — must match a
        /// cold parse of the running text at *every* step, spans and
        /// diagnostics included. While the document is broken the
        /// incremental precondition (a clean previous parse) doesn't
        /// hold, so the harness does what a session does: splice and
        /// fully reparse until the text is clean again.
        #[test]
        fn random_edit_sequences_match_cold(seed in 0u64..10_000) {
                let limits = ParseLimits::default();
                let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
                let mut next = move || {
                    rng ^= rng << 13;
                    rng ^= rng >> 7;
                    rng ^= rng << 17;
                    rng
                };
                let mut source = String::from(BASE);
                let (parsed, parsed_diags) = parse_partial(&source);
                let (mut spec, mut diags) = (parsed, parsed_diags);
                prop_assert!(diags.is_empty());
                for step in 0..60 {
                    let len = source.len();
                    let a = (next() as usize) % (len + 1);
                    let b = (next() as usize) % (len + 1);
                    let (s, e0) = if a <= b { (a, b) } else { (b, a) };
                    // Small deletions so the document keeps its shape.
                    let e = e0.min(s + (next() as usize) % 24);
                    let text = match next() % 6 {
                        0 => "",
                        1 => "z",
                        2 => "\nvar q0 : int<8>;\n",
                        3 => " wait 3; ",
                        4 => "{", // a parse breaker
                        _ => "\n",
                    };
                    let delta = EditDelta::new(s, e, text);
                    let (new_source, new_spec, new_diags) = if diags.is_empty() {
                        let got = reparse_with_edit(&source, &spec, &delta, &limits)
                            .expect("ASCII source, in-bounds delta");
                        (got.source, got.spec, got.diags)
                    } else {
                        let mut t = String::from(&source[..s]);
                        t.push_str(text);
                        t.push_str(&source[e..]);
                        let (sp, dg) = parse_partial_with_limits(&t, &limits);
                        (t, sp, dg)
                    };
                    let (cold_spec, cold_diags) = parse_partial(&new_source);
                    prop_assert_eq!(&new_spec, &cold_spec, "AST at step {}", step);
                    prop_assert_eq!(&new_diags, &cold_diags, "diags at step {}", step);
                    source = new_source;
                    spec = new_spec;
                    diags = new_diags;
                }
        }
    }

    /// Replaying every single-byte deletion and a sweep of single-byte
    /// insertions across the whole fixture must always match the cold
    /// parse — AST, spans, and diagnostics — whatever scope was chosen.
    #[test]
    fn exhaustive_single_byte_edits_match_cold() {
        let (old_spec, _) = parse_partial(BASE);
        let limits = ParseLimits::default();
        for pos in 0..BASE.len() {
            if !BASE.is_char_boundary(pos) || !BASE.is_char_boundary(pos + 1) {
                continue;
            }
            for delta in [
                EditDelta::new(pos, pos + 1, ""),
                EditDelta::new(pos, pos, "z".to_string()),
                EditDelta::new(pos, pos, "\n".to_string()),
            ] {
                let got = reparse_with_edit(BASE, &old_spec, &delta, &limits)
                    .expect("valid delta");
                let (cold_spec, cold_diags) = parse_partial(&got.source);
                assert_eq!(
                    got.spec, cold_spec,
                    "divergence at pos {pos} with {delta:?}"
                );
                assert_eq!(got.diags, cold_diags, "diags at pos {pos} with {delta:?}");
            }
        }
    }
}
