//! Tokens of the specification language.

use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// The kinds of tokens the lexer produces.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    // Literals and identifiers.
    /// An integer literal.
    Int(u64),
    /// A floating-point literal (only used by `prob` annotations).
    Float(f64),
    /// An identifier.
    Ident(String),

    // Keywords.
    /// `system`
    System,
    /// `port`
    Port,
    /// `var`
    Var,
    /// `const`
    Const,
    /// `process`
    Process,
    /// `proc`
    Proc,
    /// `func`
    Func,
    /// `in`
    In,
    /// `out`
    Out,
    /// `inout`
    Inout,
    /// `int`
    IntType,
    /// `bool`
    BoolType,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `call`
    Call,
    /// `return`
    Return,
    /// `wait`
    Wait,
    /// `fork`
    Fork,
    /// `send`
    Send,
    /// `receive`
    Receive,
    /// `prob`
    Prob,
    /// `iters`
    Iters,
    /// `true`
    True,
    /// `false`
    False,
    /// `and`
    And,
    /// `or`
    Or,
    /// `not`
    Not,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `..`
    DotDot,
    /// `->`
    Arrow,
    /// `@` (introduces a declaration annotation such as `@allow(A006)`)
    At,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Looks up the keyword for an identifier-shaped lexeme.
    pub fn keyword(ident: &str) -> Option<TokenKind> {
        Some(match ident {
            "system" => TokenKind::System,
            "port" => TokenKind::Port,
            "var" => TokenKind::Var,
            "const" => TokenKind::Const,
            "process" => TokenKind::Process,
            "proc" => TokenKind::Proc,
            "func" => TokenKind::Func,
            "in" => TokenKind::In,
            "out" => TokenKind::Out,
            "inout" => TokenKind::Inout,
            "int" => TokenKind::IntType,
            "bool" => TokenKind::BoolType,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "for" => TokenKind::For,
            "while" => TokenKind::While,
            "call" => TokenKind::Call,
            "return" => TokenKind::Return,
            "wait" => TokenKind::Wait,
            "fork" => TokenKind::Fork,
            "send" => TokenKind::Send,
            "receive" => TokenKind::Receive,
            "prob" => TokenKind::Prob,
            "iters" => TokenKind::Iters,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "and" => TokenKind::And,
            "or" => TokenKind::Or,
            "not" => TokenKind::Not,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s: &str = match self {
            TokenKind::Int(v) => return write!(f, "{v}"),
            TokenKind::Float(v) => return write!(f, "{v}"),
            TokenKind::Ident(name) => return write!(f, "`{name}`"),
            TokenKind::System => "system",
            TokenKind::Port => "port",
            TokenKind::Var => "var",
            TokenKind::Const => "const",
            TokenKind::Process => "process",
            TokenKind::Proc => "proc",
            TokenKind::Func => "func",
            TokenKind::In => "in",
            TokenKind::Out => "out",
            TokenKind::Inout => "inout",
            TokenKind::IntType => "int",
            TokenKind::BoolType => "bool",
            TokenKind::If => "if",
            TokenKind::Else => "else",
            TokenKind::For => "for",
            TokenKind::While => "while",
            TokenKind::Call => "call",
            TokenKind::Return => "return",
            TokenKind::Wait => "wait",
            TokenKind::Fork => "fork",
            TokenKind::Send => "send",
            TokenKind::Receive => "receive",
            TokenKind::Prob => "prob",
            TokenKind::Iters => "iters",
            TokenKind::True => "true",
            TokenKind::False => "false",
            TokenKind::And => "and",
            TokenKind::Or => "or",
            TokenKind::Not => "not",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Semi => ";",
            TokenKind::Colon => ":",
            TokenKind::Comma => ",",
            TokenKind::Assign => "=",
            TokenKind::Eq => "==",
            TokenKind::Ne => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::DotDot => "..",
            TokenKind::Arrow => "->",
            TokenKind::At => "@",
            TokenKind::Eof => "end of input",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("process"), Some(TokenKind::Process));
        assert_eq!(TokenKind::keyword("prob"), Some(TokenKind::Prob));
        assert_eq!(TokenKind::keyword("frobnicate"), None);
    }

    #[test]
    fn display_shapes() {
        assert_eq!(TokenKind::Int(42).to_string(), "42");
        assert_eq!(TokenKind::Ident("x".into()).to_string(), "`x`");
        assert_eq!(TokenKind::DotDot.to_string(), "..");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
