//! The paper's benchmark corpus: the four example systems of Figure 4.
//!
//! The originals were VHDL behavioural specifications processed by
//! SpecSyn; here each system is rewritten in this crate's specification
//! language at the same system-level shape — the same processes,
//! procedures and variables, and therefore (closely) the same number of
//! SLIF functional objects. The paper's reported numbers are embedded as
//! [`PaperRow`] so benchmarks and reports can print paper-vs-measured
//! tables.

use crate::diag::SpecError;
use crate::resolver::{resolve, ResolvedSpec};

/// Source of the telephone answering machine example.
pub const ANS: &str = include_str!("../corpus/ans.sl");
/// Source of the ethernet coprocessor example.
pub const ETHER: &str = include_str!("../corpus/ether.sl");
/// Source of the fuzzy-logic controller example (the paper's Figure 1).
pub const FUZZY: &str = include_str!("../corpus/fuzzy.sl");
/// Source of the volume-measuring medical instrument example.
pub const VOL: &str = include_str!("../corpus/vol.sl");

/// One row of the paper's Figure 4 table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// VHDL line count reported by the paper.
    pub lines: u32,
    /// Behavior + variable functional objects.
    pub bv: u32,
    /// Channels.
    pub channels: u32,
    /// Seconds to build SLIF on a Sparc 2.
    pub t_slif_s: f64,
    /// Seconds to estimate size/pins/bitrate/performance on a Sparc 2
    /// (reported as 0.00, i.e. below the 10 ms measurement resolution).
    pub t_est_s: f64,
}

/// A corpus entry: name, source, and the paper's reported numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorpusEntry {
    /// Short name used throughout the paper (`ans`, `ether`, `fuzzy`, `vol`).
    pub name: &'static str,
    /// What the system is.
    pub description: &'static str,
    /// Specification source text.
    pub source: &'static str,
    /// The paper's Figure 4 row.
    pub paper: PaperRow,
}

impl CorpusEntry {
    /// Parses and resolves this entry's source.
    ///
    /// # Errors
    ///
    /// A [`SpecError`] — which for the shipped corpus would indicate a
    /// packaging bug, and is covered by tests.
    pub fn load(&self) -> Result<ResolvedSpec, SpecError> {
        resolve(crate::parser::parse(self.source)?)
    }
}

/// Per-entry failures from [`load_all`]: one bad corpus file no longer
/// hides the state of the rest.
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusLoadReport {
    /// `(entry name, its aggregated diagnostics)`, in corpus order.
    pub failures: Vec<(&'static str, SpecError)>,
}

impl std::fmt::Display for CorpusLoadReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} corpus entr", self.failures.len())?;
        write!(
            f,
            "{} failed to load:",
            if self.failures.len() == 1 { "y" } else { "ies" }
        )?;
        for (name, err) in &self.failures {
            for diag in err.diagnostics() {
                write!(f, "\n  {name}: {diag}")?;
            }
        }
        Ok(())
    }
}

impl std::error::Error for CorpusLoadReport {}

/// Loads every corpus entry, collecting per-entry failures instead of
/// stopping (or panicking) at the first bad file.
///
/// # Errors
///
/// A [`CorpusLoadReport`] naming each entry that failed and why; the
/// successfully loaded entries are still dropped in that case, so a
/// caller that wants partial results can inspect the report and re-call
/// [`CorpusEntry::load`] per entry.
pub fn load_all() -> Result<Vec<(CorpusEntry, ResolvedSpec)>, CorpusLoadReport> {
    let mut loaded = Vec::new();
    let mut failures = Vec::new();
    for entry in all() {
        match entry.load() {
            Ok(resolved) => loaded.push((entry, resolved)),
            Err(err) => failures.push((entry.name, err)),
        }
    }
    if failures.is_empty() {
        Ok(loaded)
    } else {
        Err(CorpusLoadReport { failures })
    }
}

/// The four benchmark systems, in the paper's Figure 4 order.
pub fn all() -> [CorpusEntry; 4] {
    [
        CorpusEntry {
            name: "ans",
            description: "telephone answering machine",
            source: ANS,
            paper: PaperRow {
                lines: 632,
                bv: 45,
                channels: 64,
                t_slif_s: 2.20,
                t_est_s: 0.00,
            },
        },
        CorpusEntry {
            name: "ether",
            description: "ethernet coprocessor",
            source: ETHER,
            paper: PaperRow {
                lines: 1021,
                bv: 123,
                channels: 112,
                t_slif_s: 10.40,
                t_est_s: 0.00,
            },
        },
        CorpusEntry {
            name: "fuzzy",
            description: "fuzzy-logic controller",
            source: FUZZY,
            paper: PaperRow {
                lines: 350,
                bv: 35,
                channels: 56,
                t_slif_s: 0.46,
                t_est_s: 0.00,
            },
        },
        CorpusEntry {
            name: "vol",
            description: "volume-measuring medical instrument",
            source: VOL,
            paper: PaperRow {
                lines: 214,
                bv: 30,
                channels: 41,
                t_slif_s: 0.34,
                t_est_s: 0.00,
            },
        },
    ]
}

/// Finds a corpus entry by name.
pub fn by_name(name: &str) -> Option<CorpusEntry> {
    all().into_iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_entry_parses_and_resolves() {
        for entry in all() {
            let resolved = entry
                .load()
                .unwrap_or_else(|e| panic!("{} fails to load:\n{e}", entry.name));
            assert!(!resolved.spec().behaviors.is_empty(), "{}", entry.name);
        }
    }

    #[test]
    fn bv_counts_match_the_paper_exactly() {
        for entry in all() {
            let resolved = entry.load().unwrap();
            assert_eq!(
                resolved.spec().bv_count() as u32,
                entry.paper.bv,
                "{}: BV count diverges from Figure 4",
                entry.name
            );
        }
    }

    #[test]
    fn relative_sizes_match_figure4_ordering() {
        // ether > ans > fuzzy > vol, in both lines and objects.
        let lines: Vec<usize> = all().iter().map(|e| e.source.lines().count()).collect();
        let (ans, ether, fuzzy, vol) = (lines[0], lines[1], lines[2], lines[3]);
        assert!(ether > ans, "ether ({ether}) should out-size ans ({ans})");
        assert!(ans > fuzzy, "ans ({ans}) should out-size fuzzy ({fuzzy})");
        assert!(fuzzy > vol, "fuzzy ({fuzzy}) should out-size vol ({vol})");
    }

    #[test]
    fn corpus_lookup_by_name() {
        assert_eq!(by_name("fuzzy").unwrap().paper.bv, 35);
        assert_eq!(by_name("ether").unwrap().paper.channels, 112);
        assert!(by_name("missing").is_none());
    }

    #[test]
    fn fuzzy_matches_figure1_structure() {
        let resolved = by_name("fuzzy").unwrap().load().unwrap();
        let spec = resolved.spec();
        // The paper's Figure 1/2 objects are all present.
        for name in ["FuzzyMain", "EvaluateRule", "Convolve", "ComputeCentroid"] {
            assert!(spec.behavior(name).is_some(), "missing behavior {name}");
        }
        for var in ["in1val", "in2val", "mr1", "mr2", "tmr1", "tmr2"] {
            assert!(
                spec.vars.iter().any(|v| v.name == var),
                "missing variable {var}"
            );
        }
        assert!(spec.ports.iter().any(|p| p.name == "in1"));
        assert!(spec.ports.iter().any(|p| p.name == "out1"));
    }

    #[test]
    fn corpus_pretty_roundtrips() {
        for entry in all() {
            let ast = crate::parser::parse(entry.source).unwrap();
            let printed = crate::pretty::pretty(&ast);
            let back = crate::parser::parse(&printed)
                .unwrap_or_else(|e| panic!("{} reparse: {e}", entry.name));
            assert_eq!(
                crate::pretty::pretty(&back),
                printed,
                "{}: pretty not a fixed point",
                entry.name
            );
        }
    }
}
