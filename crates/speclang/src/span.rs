//! Source locations and spans for diagnostics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range into the source text, with line/column of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Self {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width span at the origin, for synthesized nodes.
    pub fn dummy() -> Self {
        Self::new(0, 0, 1, 1)
    }

    /// Produces a span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }
}

impl Default for Span {
    fn default() -> Self {
        Self::dummy()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 5, 3, 7).to_string(), "3:7");
    }

    #[test]
    fn join_covers_both() {
        let a = Span::new(2, 5, 1, 3);
        let b = Span::new(8, 12, 2, 1);
        let j = a.to(b);
        assert_eq!((j.start, j.end), (2, 12));
        assert_eq!((j.line, j.col), (1, 3));
    }
}
