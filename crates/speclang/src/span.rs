//! Source locations and spans for diagnostics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range into the source text, with line/column of its
/// start for human-readable diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based column of the first character.
    pub col: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Self {
            start,
            end,
            line,
            col,
        }
    }

    /// A zero-width span at the origin, for synthesized nodes.
    pub fn dummy() -> Self {
        Self::new(0, 0, 1, 1)
    }

    /// Produces a span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line,
            col: self.col,
        }
    }

    /// Rebases the span by a byte delta and a line delta, as dirty-region
    /// reparsing does when text before the span grows or shrinks. The
    /// column is untouched: a rebase is only valid when the edit did not
    /// change the span's own line layout.
    ///
    /// Deltas saturate at zero instead of wrapping: deleting more text
    /// before a span than its offset (which only happens on spans that
    /// were already stale) pins it to the origin rather than producing a
    /// huge bogus offset.
    #[must_use]
    pub fn rebased(self, byte_delta: isize, line_delta: i64) -> Span {
        Span {
            start: saturating_offset(self.start, byte_delta),
            end: saturating_offset(self.end, byte_delta),
            line: saturating_offset_u32(self.line, line_delta),
            col: self.col,
        }
    }
}

/// `base + delta`, saturating at 0 and `usize::MAX` instead of wrapping.
fn saturating_offset(base: usize, delta: isize) -> usize {
    if delta >= 0 {
        base.saturating_add(delta as usize)
    } else {
        base.saturating_sub(delta.unsigned_abs())
    }
}

/// `base + delta` for 1-based line numbers, saturating at 1.
fn saturating_offset_u32(base: u32, delta: i64) -> u32 {
    let shifted = i64::from(base).saturating_add(delta);
    u32::try_from(shifted.max(1)).unwrap_or(u32::MAX)
}

impl Default for Span {
    fn default() -> Self {
        Self::dummy()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_line_col() {
        assert_eq!(Span::new(0, 5, 3, 7).to_string(), "3:7");
    }

    #[test]
    fn join_covers_both() {
        let a = Span::new(2, 5, 1, 3);
        let b = Span::new(8, 12, 2, 1);
        let j = a.to(b);
        assert_eq!((j.start, j.end), (2, 12));
        assert_eq!((j.line, j.col), (1, 3));
    }

    #[test]
    fn rebase_shifts_bytes_and_lines() {
        let s = Span::new(100, 110, 9, 4).rebased(25, 2);
        assert_eq!((s.start, s.end, s.line, s.col), (125, 135, 11, 4));
        let back = s.rebased(-25, -2);
        assert_eq!((back.start, back.end, back.line, back.col), (100, 110, 9, 4));
    }

    /// Regression: deleting more text before a span than its own offset
    /// must saturate to the origin, not wrap around to `usize::MAX - k`.
    #[test]
    fn rebase_saturates_on_negative_deltas() {
        let s = Span::new(10, 14, 2, 3).rebased(-100, -7);
        assert_eq!((s.start, s.end), (0, 0));
        assert_eq!(s.line, 1, "line floor is 1, not 0 or a wrapped value");
        assert_eq!(s.col, 3);
        // And the positive edge saturates at the type maximum.
        let top = Span::new(usize::MAX - 1, usize::MAX, u32::MAX, 1).rebased(isize::MAX, i64::MAX);
        assert_eq!((top.start, top.end), (usize::MAX, usize::MAX));
        assert_eq!(top.line, u32::MAX);
    }
}
