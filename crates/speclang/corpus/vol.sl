-- vol: a volume-measuring medical instrument.
--
-- One of the four benchmark systems of the SLIF paper's Figure 4 (214
-- lines of VHDL, 30 behavior/variable objects, 41 channels). The
-- instrument samples an ultrasound depth transducer, filters the samples,
-- integrates cross-sectional slice areas into a volume, applies the
-- calibration stored during manufacture, and drives a display, flagging
-- out-of-range measurements.

system VolumeMeter;

port transducer : in int<12>;
port mode_sel : in int<2>;
port display : out int<16>;
port range_err : out int<1>;

-- Raw and filtered depth readings.
var depth_raw : int<12>;
var depth_filt : int<12>;

-- Sample window for the FIR filter.
var samples : int<12>[64];
var sampidx : int<8>;

-- FIR filter coefficients and accumulator.
var filter_taps : int<8>[8];
var filter_acc : int<24>;

-- Per-slice areas and their accumulation into a volume.
var slice_area : int<16>[32];
var slice_count : int<8>;
var area : int<16>;
var avg_area : int<16>;
var volume : int<24>;
var last_volume : int<24>;

-- Calibration constants (set by Calibrate) and the factory reference.
var calib_gain : int<8>;
var calib_offset : int<8>;
var ref_volume : int<24>;

-- Display and range checking. err_code and depth_filt are host-visible
-- status registers latched by external logic in the real instrument.
var unit_mode : int<2>;
var display_val : int<16>;
var range_lo : int<16>;
var range_hi : int<16>;
var out_of_range : bool;
var err_code : int<4>;

-- Capture one raw sample into the window.
proc SampleDepth() {
  depth_raw = transducer;
  samples[sampidx % 64] = depth_raw;
  sampidx = sampidx + 1;
}

-- 8-tap FIR over the most recent samples.
func FilterSample() -> int<12> {
  var acc : int<24>;
  acc = 0;
  for t in 0 .. 7 {
    acc = acc + samples[(sampidx - t) % 64] * filter_taps[t];
  }
  filter_acc = acc;
  return acc / 256;
}

-- Cross-sectional area from a filtered depth (square-law transducer).
func ComputeArea(depth : int<12>) -> int<16> {
  var a : int<16>;
  a = depth * depth / 16;
  if a > 4000 prob 0.05 {
    a = 4000;
  }
  return a;
}

-- Integrate slice areas into the running volume.
proc AccumulateVolume() {
  slice_area[slice_count % 32] = area;
  slice_count = slice_count + 1;
  if slice_count >= 32 prob 0.03 {
    var acc : int<24>;
    acc = 0;
    for s in 0 .. 31 {
      acc = acc + slice_area[s];
    }
    avg_area = acc / 32;
    volume = acc;
    slice_count = 0;
  }
}

-- Apply the factory calibration to a raw volume.
func ConvertUnits(v : int<24>) -> int<16> {
  var scaled : int<24>;
  scaled = v * calib_gain / 64 + calib_offset;
  if unit_mode == 1 prob 0.3 {
    scaled = scaled * 61 / 62;
  } else if unit_mode == 2 prob 0.2 {
    scaled = scaled / 1000;
  }
  return scaled;
}

-- Range check against the configured window.
func CheckRange(v : int<16>) -> int<1> {
  if v < range_lo prob 0.05 {
    return 1;
  }
  if v > range_hi prob 0.05 {
    return 1;
  }
  return 0;
}

-- One-time calibration pass using a known reference volume.
proc Calibrate() {
  ref_volume = 1000;
  calib_gain = 64;
  calib_offset = 0;
  range_lo = 10;
  range_hi = 30000;
  for t in 0 .. 7 {
    filter_taps[t] = 32 - t * 4;
  }
}

process VolMain {
  if sampidx == 0 prob 0.01 {
    call Calibrate();
  }
  unit_mode = mode_sel;
  call SampleDepth();
  area = ComputeArea(FilterSample());
  call AccumulateVolume();
  send DisplayMain volume;
  wait 20;
}

-- Display refresh runs as its own process at a slower rate.
process DisplayMain {
  var v : int<24>;
  receive v;
  display_val = ConvertUnits(v);
  if CheckRange(display_val) == 1 prob 0.1 {
    out_of_range = true;
    range_err = 1;
  } else {
    out_of_range = false;
    range_err = 0;
  }
  display = display_val;
  wait 100;
}
