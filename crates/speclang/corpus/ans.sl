-- ans: a telephone answering machine.
--
-- One of the four benchmark systems of the SLIF paper's Figure 4 (632
-- lines of VHDL, 45 behavior/variable objects, 64 channels). The machine
-- monitors the phone line for rings, answers after a configurable count,
-- plays the outgoing greeting, records incoming messages into a digital
-- message store, supports local playback/delete through the front-panel
-- buttons, and accepts a remote-access code dialled in DTMF tones.

system AnsweringMachine;

-- Line interface.
port line_sample : in int<8>;
port ring_detect : in int<1>;
port hook_ctl : out int<1>;
port speaker : out int<8>;

-- Front panel.
port buttons : in int<4>;
port display7 : out int<8>;
port msg_led : out int<1>;

-- Ring and call state.
var ring_count : int<8>;
var rings_to_answer : int<8>;
var line_active : bool;
var call_timer : int<16>;

-- Outgoing greeting and the digital message store.
var greeting : int<8>[256];
var greeting_len : int<16>;
var msg_store : int<8>[2048];
var msg_index : int<16>[16];
var msg_len : int<16>[16];
var msg_count : int<8>;
var write_ptr : int<16>;
var play_ptr : int<16>;
var current_msg : int<8>;

-- Recording state.
var rec_active : bool;
var rec_time : int<16>;
var max_rec_time : int<16>;
var silence_count : int<16>;
var silence_limit : int<16>;

-- DTMF remote access.
var dtmf_val : int<4>;
var dtmf_valid : bool;
var remote_code : int<4>[4];
var entered_code : int<4>[4];
var code_pos : int<8>;
var code_ok : bool;

-- User interface state (volume_setting, led_on, call_timer, msg_len, and
-- greeting_len are host/factory-visible registers latched externally).
var button_state : int<4>;
var last_button : int<4>;
var display_code : int<8>;
var led_on : bool;
var volume_setting : int<4>;
var beep_freq : int<8>;

-- Detect a ring edge on the line and count it.
proc DetectRing() {
  if ring_detect == 1 prob 0.1 {
    ring_count = ring_count + 1;
  } else {
    ring_count = 0;
  }
}

-- Go off-hook and start the call timer.
proc AnswerCall() {
  hook_ctl = 1;
  line_active = true;
  ring_count = 0;
}

-- Hang up.
proc HangUp() {
  hook_ctl = 0;
  line_active = false;
}

-- Play the outgoing greeting to the line.
proc PlayGreeting() {
  for i in 0 .. 255 {
    if i < 200 prob 0.8 {
      speaker = greeting[i];
    }
  }
}

-- Record one sample of the incoming message; track silence for auto-stop
-- and watch for DTMF tones from a remote caller.
proc RecordSample() {
  var s : int<8>;
  s = line_sample;
  msg_store[write_ptr % 2048] = s;
  write_ptr = write_ptr + 1;
  rec_time = rec_time + 1;
  if abs(s - 128) < 4 prob 0.3 {
    silence_count = silence_count + 1;
  } else {
    silence_count = 0;
  }
  dtmf_val = DecodeDtmf(s);
  if dtmf_val != 0 prob 0.05 {
    call CheckRemoteCode();
  }
  if silence_count > silence_limit prob 0.02 {
    call FinishRecording();
  }
  if rec_time > max_rec_time prob 0.01 {
    call FinishRecording();
  }
}

-- Close out the message being recorded and index it.
proc FinishRecording() {
  msg_index[msg_count % 16] = write_ptr;
  msg_count = msg_count + 1;
  rec_active = false;
  rec_time = 0;
  call BeepTone(1);
}

-- Play back one stored message through the speaker.
proc PlayMessage(which : int<8>) {
  var base : int<16>;
  var len : int<16>;
  base = msg_index[which % 16];
  len = 128;
  play_ptr = base;
  while play_ptr < base + len iters 400 {
    speaker = msg_store[play_ptr % 2048];
    play_ptr = play_ptr + 1;
  }
}

-- Delete all stored messages.
proc DeleteMessages() {
  msg_count = 0;
  write_ptr = 0;
  current_msg = 0;
}

-- Decode a DTMF pair from the current line sample (quick table model).
func DecodeDtmf(s : int<8>) -> int<4> {
  if s > 200 prob 0.1 {
    return (s - 200) % 16;
  }
  return 0;
}

-- Accumulate remote-access digits, validate the code, and open a remote
-- session when it matches.
proc CheckRemoteCode() {
  entered_code[code_pos % 4] = dtmf_val;
  code_pos = code_pos + 1;
  if code_pos >= 4 prob 0.25 {
    code_ok = true;
    for d in 0 .. 3 {
      if entered_code[d] != remote_code[d] prob 0.5 {
        code_ok = false;
      }
    }
    code_pos = 0;
    if code_ok prob 0.3 {
      send RemoteSession 1;
    }
  }
}

-- Emit a confirmation beep pattern.
proc BeepTone(n : int<8>) {
  for b in 0 .. 7 {
    if b < 4 prob 0.5 {
      speaker = beep_freq + n * 8;
    } else {
      speaker = 0;
    }
  }
}

-- Refresh the 7-segment display with the message count or an error code.
proc UpdateDisplay() {
  if msg_count > 0 prob 0.6 {
    display_code = msg_count;
    msg_led = 1;
  } else {
    display_code = 0;
    msg_led = 0;
  }
  display7 = display_code;
}

-- The call-handling controller.
process AnsMain {
  call DetectRing();
  if ring_count >= rings_to_answer prob 0.05 {
    call AnswerCall();
    call PlayGreeting();
    rec_active = true;
    while rec_active iters 300 {
      call RecordSample();
    }
    call HangUp();
    send PanelMain ring_count;
  }
  wait 10;
}

-- Remote-access session: play messages to the caller over the line.
process RemoteSession {
  var cmd : int<4>;
  receive cmd;
  for m in 0 .. 15 {
    if m < 3 prob 0.2 {
      call PlayMessage(m);
    }
  }
  code_ok = false;
  wait 10;
}

-- Front-panel controller: buttons drive playback, delete, volume.
process PanelMain {
  var note : int<8>;
  receive note;
  button_state = buttons;
  if button_state != last_button prob 0.2 {
    if button_state == 1 prob 0.4 {
      call PlayMessage(current_msg);
      current_msg = current_msg + 1;
    } else if button_state == 2 prob 0.3 {
      call DeleteMessages();
    } else if button_state == 8 prob 0.1 {
      rings_to_answer = rings_to_answer + 1;
      if rings_to_answer > 9 prob 0.2 {
        rings_to_answer = 2;
      }
    }
  }
  last_button = button_state;
  call UpdateDisplay();
  wait 25;
}
