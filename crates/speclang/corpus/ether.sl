-- ether: an ethernet coprocessor.
--
-- The largest of the four benchmark systems in the SLIF paper's Figure 4
-- (1021 lines of VHDL, 123 behavior/variable objects, 112 channels). The
-- coprocessor implements the 10 Mb/s MAC datapath: frame transmission
-- with preamble/CRC generation, CSMA/CD collision handling with binary
-- exponential backoff, frame reception with address filtering and CRC
-- checking, a descriptor-based DMA engine toward host memory, an MII
-- management interface to the PHY, and the usual pile of control/status
-- registers and statistics counters. The register file dominates the
-- object count — most CSRs are touched by only one or two behaviors —
-- which is why this example has more objects (123) than channels (112).

system EtherCoprocessor;

-- Host bus interface.
port host_data : in int<32>;
port host_addr : in int<8>;
port host_wr : in int<1>;
port host_out : out int<32>;
port intr : out int<1>;

-- Medium interface (serial side).
port phy_rx : in int<8>;
port phy_tx : out int<8>;
port phy_crs : in int<1>;
port phy_col : in int<1>;
port mdio_in : in int<1>;
port mdio_out : out int<1>;

-- === Station address and multicast filter ===
var mac_addr : int<8>[6];
var mcast_hash : int<8>[8];

-- === Frame buffers and FIFOs ===
var tx_buffer : int<8>[1536];
var rx_buffer : int<8>[1536];
var tx_fifo : int<8>[64];
var rx_fifo : int<8>[64];

-- === Buffer pointers ===
var tx_len : int<16>;
var rx_len : int<16>;
var tx_ptr : int<16>;
var rx_ptr : int<16>;
var tx_head : int<8>;
var tx_tail : int<8>;
var rx_head : int<8>;
var rx_tail : int<8>;

-- === CRC engine ===
var crc_acc : int<32>;
var crc_table : int<32>[256];

-- === Engine states ===
var tx_state : int<4>;
var rx_state : int<4>;
var dma_state : int<4>;
var mii_state : int<4>;

-- === Control and status registers ===
var csr_ctrl : int<32>;
var csr_status : int<32>;
var csr_intr_mask : int<32>;
var csr_intr_stat : int<32>;
var csr_tx_desc : int<32>;
var csr_rx_desc : int<32>;
var csr_dma_addr : int<32>;
var csr_dma_len : int<16>;
var csr_mode : int<32>;
var csr_duplex : int<1>;
var csr_speed : int<2>;
var csr_fctrl : int<16>;

-- === Statistics counters ===
var cnt_tx_ok : int<32>;
var cnt_tx_err : int<16>;
var cnt_tx_col : int<16>;
var cnt_tx_defer : int<16>;
var cnt_rx_ok : int<32>;
var cnt_rx_err : int<16>;
var cnt_rx_crc : int<16>;
var cnt_rx_align : int<16>;
var cnt_rx_long : int<16>;
var cnt_rx_short : int<16>;
var cnt_octets_tx : int<32>;
var cnt_octets_rx : int<32>;
var cnt_rx_missed : int<16>;

-- === Collision handling and backoff ===
var col_count : int<8>;
var backoff_mask : int<16>;
var backoff_time : int<16>;
var retry_limit : int<8>;
var jam_len : int<8>;

-- === Inter-frame gap and deferral ===
var ifg_timer : int<8>;
var defer_count : int<16>;

-- === Preamble generation ===
var preamble_len : int<8>;
var sfd_val : int<8>;

-- === Receive address filtering ===
var promisc : bool;
var accept_bcast : bool;
var accept_mcast : bool;
var addr_match : bool;

-- === Current frame fields ===
var frame_type : int<16>;
var frame_len_field : int<16>;
var dest_addr : int<8>[6];
var src_addr : int<8>[6];
var pad_count : int<8>;

-- === MII management ===
var mii_phy_addr : int<5>;
var mii_reg_addr : int<5>;
var mii_data_in : int<16>;
var mii_data_out : int<16>;
var mii_busy : bool;

-- === DMA engine ===
var dma_src : int<32>;
var dma_dst : int<32>;
var dma_count : int<16>;
var dma_busy : bool;
var desc_ptr : int<32>;
var desc_status : int<8>;

-- === Mode flags ===
var loopback : bool;
var link_up : bool;
var full_duplex : bool;
var tx_enable : bool;
var rx_enable : bool;
var intr_pending : bool;
var soft_reset : bool;

-- === Flow control (pause frames) ===
var pause_timer : int<16>;
var pause_quanta : int<16>;
var pause_active : bool;

-- === FIFO thresholds ===
var tx_threshold : int<8>;
var rx_threshold : int<8>;
var fifo_depth : int<8>;

-- === Error latches ===
var err_underflow : bool;
var err_overflow : bool;
var err_latecol : bool;
var err_carrier : bool;
var err_heartbeat : bool;

-- === Timestamps (maintained by the host-visible timer block) ===
var ts_last_tx : int<32>;
var ts_last_rx : int<32>;

-- === Descriptor shadows ===
var tx_desc_addr : int<32>;
var tx_desc_len : int<16>;
var tx_desc_flags : int<8>;
var rx_desc_addr : int<32>;
var rx_desc_len : int<16>;
var rx_desc_flags : int<8>;

-- === Misc ===
var lfsr_seed : int<16>;
var led_mode : int<4>;
var led_timer : int<16>;

-- Table-driven CRC-32 over the transmit buffer.
func ComputeCrc(len : int<16>) -> int<32> {
  var acc : int<32>;
  acc = 0xFF;
  for i in 0 .. 1517 {
    if i < 1500 prob 0.04 {
      acc = crc_table[(acc + tx_buffer[i]) % 256];
    }
  }
  crc_acc = acc;
  return acc;
}

-- Serialize the 7-byte preamble and start-of-frame delimiter.
proc AppendPreamble() {
  for p in 0 .. 6 {
    phy_tx = 0x55;
  }
  phy_tx = sfd_val;
}

-- Copy a frame from the host-facing FIFO into the transmit buffer.
proc LoadTxBuffer() {
  var b : int<8>;
  tx_ptr = 0;
  while tx_head != tx_tail iters 60 {
    b = tx_fifo[tx_tail % 64];
    tx_buffer[tx_ptr % 1536] = b;
    tx_ptr = tx_ptr + 1;
    tx_tail = tx_tail + 1;
  }
  tx_len = tx_ptr;
  if tx_len < 60 prob 0.2 {
    pad_count = 60 - tx_len;
    tx_len = 60;
  }
}

-- Pseudo-random backoff slot count after the n-th collision.
func BackoffDelay(n : int<8>) -> int<16> {
  var mask : int<16>;
  mask = (1 * n + lfsr_seed) % 1024;
  backoff_mask = mask;
  return mask % (16 * n + 1);
}

-- Sample the collision pin (with loopback masking).
func CheckCollision() -> int<1> {
  if loopback prob 0.01 {
    return 0;
  }
  return phy_col;
}

-- Shift the frame onto the medium, handling collisions and retries.
proc TransmitFrame() {
  call AppendPreamble();
  tx_ptr = 0;
  while tx_ptr < tx_len iters 64 {
    phy_tx = tx_buffer[tx_ptr % 1536];
    tx_ptr = tx_ptr + 1;
    if CheckCollision() == 1 prob 0.03 {
      col_count = col_count + 1;
      cnt_tx_col = cnt_tx_col + 1;
      for j in 0 .. 3 {
        phy_tx = 0xAA;
      }
      backoff_time = BackoffDelay(col_count);
      tx_ptr = 0;
    }
  }
  phy_tx = ComputeCrc(tx_len) % 256;
  cnt_tx_ok = cnt_tx_ok + 1;
  cnt_octets_tx = cnt_octets_tx + tx_len;
  col_count = 0;
}

-- Compare the received destination address against station filters.
func FilterAddress() -> int<1> {
  var match : int<1>;
  match = 1;
  if promisc prob 0.05 {
    return 1;
  }
  for a in 0 .. 5 {
    if rx_buffer[a] != mac_addr[a] prob 0.5 {
      match = 0;
    }
  }
  if match == 0 and accept_bcast prob 0.3 {
    if rx_buffer[0] == 0xFF prob 0.1 {
      match = 1;
    }
  }
  if match == 0 and accept_mcast prob 0.2 {
    if mcast_hash[rx_buffer[1] % 8] != 0 prob 0.3 {
      match = 1;
    }
  }
  return match;
}

-- Check length and CRC of the received frame.
func ValidateFrame() -> int<1> {
  if rx_len < 64 prob 0.02 {
    cnt_rx_short = cnt_rx_short + 1;
    return 0;
  }
  if rx_len > 1518 prob 0.02 {
    cnt_rx_long = cnt_rx_long + 1;
    return 0;
  }
  if (crc_acc % 256) != rx_buffer[(rx_len - 1) % 1536] prob 0.02 {
    cnt_rx_crc = cnt_rx_crc + 1;
    return 0;
  }
  return 1;
}

-- Deserialize one frame from the medium into the receive buffer.
proc ReceiveFrame() {
  var b : int<8>;
  rx_ptr = 0;
  while phy_crs == 1 iters 80 {
    b = phy_rx;
    rx_buffer[rx_ptr % 1536] = b;
    rx_ptr = rx_ptr + 1;
  }
  rx_len = rx_ptr;
  frame_len_field = rx_buffer[12 % 1536] * 256;
}

-- Push the validated frame into the host-facing receive FIFO.
proc StoreRxFrame() {
  rx_ptr = 0;
  while rx_ptr < rx_len iters 80 {
    rx_fifo[rx_head % 64] = rx_buffer[rx_ptr % 1536];
    rx_head = rx_head + 1;
    rx_ptr = rx_ptr + 1;
  }
  cnt_rx_ok = cnt_rx_ok + 1;
  cnt_octets_rx = cnt_octets_rx + rx_len;
}

-- Host CSR read dispatch.
func ReadCsr(addr : int<8>) -> int<32> {
  if addr == 0 prob 0.3 {
    return csr_ctrl;
  }
  if addr == 1 prob 0.3 {
    return csr_status;
  }
  if addr == 2 prob 0.2 {
    return csr_intr_stat;
  }
  return cnt_rx_ok;
}

-- Host CSR write dispatch.
proc WriteCsr(addr : int<8>, val : int<32>) {
  if addr == 0 prob 0.4 {
    csr_ctrl = val;
    tx_enable = val % 2 == 1;
    rx_enable = (val / 2) % 2 == 1;
  } else if addr == 3 prob 0.3 {
    csr_intr_mask = val;
  } else if addr == 4 prob 0.2 {
    csr_tx_desc = val;
  } else {
    csr_rx_desc = val;
  }
}

-- Serial MII read transaction toward the PHY.
func MiiRead(reg : int<5>) -> int<16> {
  var val : int<16>;
  val = 0;
  for bit in 0 .. 15 {
    val = val * 2 + mdio_in;
  }
  mii_data_in = val;
  return val;
}

-- Serial MII write transaction toward the PHY.
proc MiiWrite(reg : int<5>, val : int<16>) {
  mii_data_out = val;
  for bit in 0 .. 15 {
    mdio_out = (val / (bit + 1)) % 2;
  }
}

-- Update statistics and raise the interrupt line when unmasked.
proc UpdateStats() {
  if err_overflow prob 0.02 {
    cnt_rx_err = cnt_rx_err + 1;
  }
  if err_underflow prob 0.02 {
    cnt_tx_err = cnt_tx_err + 1;
  }
  csr_intr_stat = cnt_tx_err + cnt_rx_err;
  if csr_intr_stat > 0 and csr_intr_mask > 0 prob 0.1 {
    intr = 1;
  }
}

-- Transmit engine: wait for work, load, defer, transmit.
process TxMain {
  if tx_enable prob 0.5 {
    if tx_head != tx_tail prob 0.3 {
      call LoadTxBuffer();
      while phy_crs == 1 iters 3 {
        defer_count = defer_count + 1;
        cnt_tx_defer = cnt_tx_defer + 1;
      }
      ifg_timer = 96;
      call TransmitFrame();
      send DmaMain tx_len;
    }
  }
  wait 8;
}

-- Receive engine: carrier sense, deserialize, filter, validate, store.
process RxMain {
  if rx_enable prob 0.6 {
    if phy_crs == 1 prob 0.25 {
      call ReceiveFrame();
      if FilterAddress() == 1 prob 0.4 {
        if ValidateFrame() == 1 prob 0.9 {
          call StoreRxFrame();
          send DmaMain rx_len;
        }
      }
    }
  }
  wait 8;
}

-- Host interface: decode CSR accesses from the host bus.
process HostMain {
  var addr : int<8>;
  var data : int<32>;
  addr = host_addr;
  data = host_data;
  if host_wr == 1 prob 0.5 {
    call WriteCsr(addr, data);
  } else {
    host_out = ReadCsr(addr);
  }
  call UpdateStats();
  wait 16;
}

-- Descriptor DMA engine: move frame data to/from host memory.
process DmaMain {
  var len : int<16>;
  receive len;
  dma_busy = true;
  dma_count = len;
  dma_src = csr_dma_addr;
  desc_ptr = csr_tx_desc;
  while dma_count > 0 iters 90 {
    dma_count = dma_count - 1;
  }
  dma_busy = false;
  wait 4;
}

-- PHY management: poll link state over MII.
process MiiMain {
  mii_phy_addr = 1;
  mii_busy = true;
  if MiiRead(1) % 4 >= 2 prob 0.9 {
    link_up = true;
  } else {
    link_up = false;
    call MiiWrite(0, 0x1200);
  }
  mii_busy = false;
  wait 200;
}
