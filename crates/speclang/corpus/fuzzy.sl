-- fuzzy: a fuzzy-logic controller.
--
-- The running example of the SLIF paper (its Figure 1 shows the partial
-- VHDL source). Two sampled inputs are fuzzified against stored membership
-- rules, the truncated rules are convolved, and a centroid defuzzification
-- produces the output value. Such controllers appear in video camera focus
-- control, thermostats, and cruise control, where smooth transitions
-- between output values are needed.
--
-- Structure per the paper: process FuzzyMain samples in1/in2 into
-- in1val/in2val, calls EvaluateRule once per input, convolves the
-- truncated membership rules, computes a centroid, and drives out1.

system FuzzyController;

port in1 : in int<8>;
port in2 : in int<8>;
port out1 : out int<8>;
port alarm : out int<8>;

-- Sampled input values.
var in1val : int<8>;
var in2val : int<8>;

-- Membership rules (three 128-entry banks each: low / high / output).
var mr1 : int<8>[384];
var mr2 : int<8>[384];

-- Truncated membership rules.
var tmr1 : int<8>[128];
var tmr2 : int<8>[128];

-- Convolution of the truncated rules.
var conv : int<8>[128];

-- Centroid accumulators.
var centroid_num : int<24>;
var centroid_den : int<16>;

-- Output pipeline.
var outval : int<8>;
var smooth_acc : int<16>;
var clip_lo : int<8>;
var clip_hi : int<8>;

-- Rule store the membership banks are unpacked from.
var rulebase : int<8>[512];
var weights : int<8>[16];

-- Output history for smoothing and alarm detection.
var history : int<8>[32];
var histidx : int<8>;

-- Per-input rule strengths and their normalization.
var strength1 : int<8>;
var strength2 : int<8>;
var norm_max : int<8>;

-- Alarm bookkeeping.
var alarm_level : int<8>;
var alarm_count : int<8>;
var initialized : bool;

-- Unpack the rule store into the two membership banks.
proc InitRules() {
  for i in 0 .. 383 {
    mr1[i] = rulebase[i];
  }
  for i in 0 .. 127 {
    mr2[i] = rulebase[384 + i];
  }
  for i in 128 .. 383 {
    mr2[i] = rulebase[i - 128];
  }
  clip_lo = rulebase[500];
  clip_hi = rulebase[501];
  alarm_level = rulebase[502];
  initialized = true;
}

-- Truncate one input's membership rules (the paper's EvaluateRule).
proc EvaluateRule(num : int<8>) {
  var trunc : int<8>;
  if num == 1 prob 0.5 {
    trunc = min(mr1[in1val], mr1[128 + in1val]);
  } else {
    trunc = min(mr2[in2val], mr2[128 + in2val]);
  }
  for i in 0 .. 127 {
    if num == 1 prob 0.5 {
      tmr1[i] = min(trunc, mr1[256 + i]);
    } else {
      tmr2[i] = min(trunc, mr2[256 + i]);
    }
  }
  if num == 1 prob 0.5 {
    strength1 = trunc;
  } else {
    strength2 = trunc;
  }
}

-- Convolve the two truncated rule banks.
proc Convolve() {
  for i in 0 .. 127 {
    conv[i] = max(tmr1[i], tmr2[i]);
  }
}

-- Strength of the rule at an index, weighted by the rule weights.
func RuleStrength(idx : int<8>) -> int<8> {
  var w : int<8>;
  w = weights[idx % 16];
  return min(conv[idx], w);
}

-- Scale a value by a weight into a wider accumulator term.
func ApplyWeight(v : int<8>, w : int<8>) -> int<16> {
  return v * w;
}

-- Normalize the two rule strengths against their maximum.
proc Normalize() {
  norm_max = max(strength1, strength2);
  if norm_max > 0 prob 0.9 {
    strength1 = (strength1 * 100) / norm_max;
    strength2 = (strength2 * 100) / norm_max;
  }
}

-- Centroid defuzzification over the convolved surface.
func ComputeCentroid() -> int<8> {
  var acc_n : int<24>;
  var acc_d : int<16>;
  acc_n = 0;
  acc_d = 0;
  for i in 0 .. 127 {
    acc_n = acc_n + ApplyWeight(RuleStrength(i), i);
    acc_d = acc_d + conv[i];
  }
  centroid_num = acc_n;
  centroid_den = acc_d;
  if acc_d == 0 prob 0.05 {
    return 0;
  }
  return acc_n / acc_d;
}

-- Clip the defuzzified value into the configured output window.
func ClipValue(v : int<8>) -> int<8> {
  if v < clip_lo prob 0.1 {
    return clip_lo;
  }
  if v > clip_hi prob 0.1 {
    return clip_hi;
  }
  return v;
}

-- Exponential-ish smoothing over the output history.
proc SmoothOutput() {
  smooth_acc = (smooth_acc * 3) / 4 + outval;
  outval = smooth_acc / 4;
}

-- Append the output value to the history ring.
proc UpdateHistory() {
  history[histidx % 32] = outval;
  histidx = histidx + 1;
  if histidx >= 96 prob 0.02 {
    histidx = 0;
  }
}

process FuzzyMain {
  if not initialized prob 0.01 {
    call InitRules();
  }
  in1val = in1;
  in2val = in2;
  call EvaluateRule(1);
  call EvaluateRule(2);
  call Convolve();
  call Normalize();
  outval = ClipValue(ComputeCentroid());
  call SmoothOutput();
  call UpdateHistory();
  out1 = outval;
  send Monitor outval;
  wait 50;
}

-- Watchdog process: trips the alarm when the output saturates repeatedly.
process Monitor {
  var v : int<8>;
  receive v;
  if v >= alarm_level prob 0.1 {
    alarm_count = alarm_count + 1;
  } else {
    alarm_count = 0;
  }
  if history[histidx % 32] >= alarm_level prob 0.1 {
    alarm_count = alarm_count + 1;
  }
  if alarm_count > 8 prob 0.02 {
    alarm = alarm_count;
    alarm_count = 0;
  }
  wait 50;
}
