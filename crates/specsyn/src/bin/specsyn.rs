//! The `specsyn` command-line entry point.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match specsyn::run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("{err}");
            ExitCode::FAILURE
        }
    }
}
