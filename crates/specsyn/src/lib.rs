//! # specsyn — a SpecSyn-style system-design environment over SLIF
//!
//! The paper's SLIF format "serves as the core of the SpecSyn system
//! design environment", which "permits rapid exploration of partitions of
//! functionality among processors, ASICs, memories and bus components,
//! providing rapid estimates of size, I/O, and performance metrics for
//! each option examined" (Section 6). This crate is that environment as a
//! command-line tool; the heavy lifting lives in the `slif-*` crates and
//! each subcommand is a thin, testable function returning its report as a
//! string.
//!
//! ```text
//! specsyn list                       # the benchmark corpus
//! specsyn build  <spec> [--dot]      # spec → SLIF (+ Graphviz)
//! specsyn estimate <spec>            # size/pins/bitrate/performance
//! specsyn partition <spec> --algo sa # explore the partition space
//! specsyn compare <spec>             # SLIF vs ADD vs CDFG sizes
//! specsyn report                     # the paper's Figure 4 table
//! ```
//!
//! `<spec>` is a corpus name (`ans`, `ether`, `fuzzy`, `vol`) or a path
//! to a `.sl` file.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use slif_core::dot::{design_to_dot, DotStyle};
use slif_core::Design;
use slif_estimate::DesignReport;
use slif_explore::{
    cluster_partition, greedy_improve, group_migration, inline_procedure, merge_processes,
    pareto_sweep, random_search, simulated_annealing, AnnealingConfig, Objectives,
};
use slif_formats::FormatComparison;
use slif_frontend::{
    all_software_partition, allocate_proc_asic, build_design, build_design_at, Granularity, Profile,
};
use slif_sim::{simulate, PortStimulus, SimConfig, Stimulus};
use slif_speclang::{corpus, ResolvedSpec};
use slif_techlib::TechnologyLibrary;
use std::fmt::Write as _;
use std::time::Instant;

/// Error running a specsyn command.
#[derive(Debug)]
pub enum CliError {
    /// Bad command-line usage; the string is the usage text.
    Usage(String),
    /// The spec could not be found or read.
    Io(std::io::Error),
    /// The spec failed to parse or resolve.
    Spec(slif_speclang::SpecError),
    /// Estimation or exploration failed.
    Core(slif_core::CoreError),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Usage(u) => write!(f, "{u}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::Spec(e) => write!(f, "specification error:\n{e}"),
            CliError::Core(e) => write!(f, "estimation error: {e}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(value: std::io::Error) -> Self {
        CliError::Io(value)
    }
}

impl From<slif_speclang::SpecError> for CliError {
    fn from(value: slif_speclang::SpecError) -> Self {
        CliError::Spec(value)
    }
}

impl From<slif_core::CoreError> for CliError {
    fn from(value: slif_core::CoreError) -> Self {
        CliError::Core(value)
    }
}

/// Top-level usage text.
pub const USAGE: &str = "usage: specsyn <command> [args]\n\
commands:\n\
  list                         list the benchmark corpus\n\
  build <spec> [--dot] [--annotated] [--profile FILE]\n\
                               build SLIF and print a summary (or Graphviz)\n\
  estimate <spec>              build, allocate cpu+asic+mem+bus, estimate\n\
  partition <spec> [--algo greedy|random|sa|kl|cluster] [--seed N] [--blocks]\n\
            [--dot]            explore the partition space (--dot: clustered graph)\n\
  compare <spec>               SLIF vs ADD vs CDFG format sizes\n\
  simulate <spec> [--rounds N] functionally simulate and profile\n\
  pareto <spec> [--samples N]  multi-objective (time/gates/pins) sweep\n\
  inline <spec> <proc>         inline a procedure (annotation recompute)\n\
  merge <spec> <proc1> <proc2> merge two processes\n\
  report                       regenerate the paper's Figure 4 table\n\
<spec> is a corpus name (ans, ether, fuzzy, vol) or a .sl file path";

/// Loads a previously saved `.slif` design file.
///
/// # Errors
///
/// I/O errors for unreadable paths; usage errors for malformed files.
pub fn load_slif(path: &str) -> Result<Design, CliError> {
    let text = std::fs::read_to_string(path)?;
    slif_core::text::parse_design(&text).map_err(|e| CliError::Usage(e.to_string()))
}

/// Loads a spec by corpus name or file path.
///
/// # Errors
///
/// I/O errors for unreadable paths; spec errors for invalid sources.
pub fn load_spec(name_or_path: &str) -> Result<ResolvedSpec, CliError> {
    if let Some(entry) = corpus::by_name(name_or_path) {
        return Ok(entry.load()?);
    }
    let source = std::fs::read_to_string(name_or_path)?;
    Ok(slif_speclang::parse_and_resolve(&source)?)
}

/// Runs a full command line (without the program name).
///
/// # Errors
///
/// A [`CliError`] describing what went wrong; `Usage` carries help text.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("list") => Ok(cmd_list()),
        Some("build") => cmd_build(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("partition") => cmd_partition(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("pareto") => cmd_pareto(&args[1..]),
        Some("inline") => cmd_inline(&args[1..]),
        Some("merge") => cmd_merge(&args[1..]),
        Some("report") => Ok(cmd_report()),
        _ => Err(CliError::Usage(USAGE.to_owned())),
    }
}

fn cmd_list() -> String {
    let mut out = String::from("benchmark corpus (the paper's Figure 4 systems):\n");
    for e in corpus::all() {
        let _ = writeln!(
            out,
            "  {:<6} {:<40} paper: {} lines, {} objects, {} channels",
            e.name, e.description, e.paper.lines, e.paper.bv, e.paper.channels
        );
    }
    out
}

fn cmd_build(args: &[String]) -> Result<String, CliError> {
    let mut spec_arg: Option<&str> = None;
    let mut dot = false;
    let mut annotated = false;
    let mut out_path: Option<&str> = None;
    let mut granularity = Granularity::Behavior;
    let mut profile: Option<Profile> = None;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--dot" => dot = true,
            "--annotated" => annotated = true,
            "--blocks" => granularity = Granularity::BasicBlock,
            "--out" => {
                out_path = Some(
                    it.next()
                        .ok_or_else(|| CliError::Usage("--out needs a file".to_owned()))?,
                );
            }
            "--profile" => {
                let path = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--profile needs a file".to_owned()))?;
                let text = std::fs::read_to_string(path)?;
                profile = Some(Profile::parse(&text).map_err(|e| CliError::Usage(e.to_string()))?);
            }
            other if spec_arg.is_none() => spec_arg = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let spec_arg = spec_arg.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;

    let rs = load_with_profile(spec_arg, profile)?;
    let started = Instant::now();
    let design = build_design_at(&rs, &TechnologyLibrary::standard(), granularity);
    let elapsed = started.elapsed();
    if dot {
        let style = if annotated {
            DotStyle::Annotated
        } else {
            DotStyle::Basic
        };
        return Ok(design_to_dot(&design, style));
    }
    if let Some(path) = out_path {
        std::fs::write(path, slif_core::text::write_design(&design))?;
    }
    let mut out = String::new();
    let _ = writeln!(out, "built SLIF for `{}`:", design.name());
    let _ = writeln!(
        out,
        "  {} behavior/variable objects, {} channels, {} ports",
        design.graph().node_count(),
        design.graph().channel_count(),
        design.graph().port_count()
    );
    let _ = writeln!(
        out,
        "  {} component classes annotated (T-slif: {:.3} ms)",
        design.class_count(),
        elapsed.as_secs_f64() * 1e3
    );
    Ok(out)
}

fn load_with_profile(spec_arg: &str, profile: Option<Profile>) -> Result<ResolvedSpec, CliError> {
    match profile {
        None => load_spec(spec_arg),
        Some(p) => {
            // Re-parse so the overrides apply before resolution.
            let source = match corpus::by_name(spec_arg) {
                Some(e) => e.source.to_owned(),
                None => std::fs::read_to_string(spec_arg)?,
            };
            let mut spec = slif_speclang::parse(&source).map_err(CliError::Spec)?;
            p.apply(&mut spec);
            Ok(slif_speclang::resolve(spec)?)
        }
    }
}

/// Builds, allocates the paper's processor–ASIC architecture, and returns
/// (design, all-software partition).
fn build_proc_asic(rs: &ResolvedSpec) -> (Design, slif_core::Partition) {
    build_proc_asic_at(rs, Granularity::Behavior)
}

fn build_proc_asic_at(
    rs: &ResolvedSpec,
    granularity: Granularity,
) -> (Design, slif_core::Partition) {
    let mut design = build_design_at(rs, &TechnologyLibrary::proc_asic(), granularity);
    let arch = allocate_proc_asic(&mut design);
    let part = all_software_partition(&design, arch);
    (design, part)
}

fn cmd_estimate(args: &[String]) -> Result<String, CliError> {
    let spec_arg = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    // A saved `.slif` design skips the build step entirely — the paper's
    // point that SLIF is built once and reused.
    let (design, part) = if spec_arg.ends_with(".slif") {
        let mut design = load_slif(spec_arg)?;
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        (design, part)
    } else {
        let rs = load_spec(spec_arg)?;
        build_proc_asic(&rs)
    };
    let started = Instant::now();
    let report = DesignReport::compute(&design, &part)?;
    let elapsed = started.elapsed();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "estimates for `{}` (all-software start, T-est: {:.3} ms):",
        design.name(),
        elapsed.as_secs_f64() * 1e3
    );
    let _ = write!(out, "{report}");
    Ok(out)
}

fn cmd_partition(args: &[String]) -> Result<String, CliError> {
    let mut spec_arg: Option<&str> = None;
    let mut algo = "greedy";
    let mut seed = 1u64;
    let mut granularity = Granularity::Behavior;
    let mut dot = false;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--blocks" => granularity = Granularity::BasicBlock,
            "--dot" => dot = true,
            "--algo" => {
                algo = it
                    .next()
                    .ok_or_else(|| CliError::Usage("--algo needs a name".to_owned()))?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::Usage("--seed needs a number".to_owned()))?;
            }
            other if spec_arg.is_none() => spec_arg = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let spec_arg = spec_arg.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let rs = load_spec(spec_arg)?;
    let (design, start) = build_proc_asic_at(&rs, granularity);
    let objectives = Objectives::new();

    let mut est = slif_estimate::IncrementalEstimator::new(&design, start.clone())?;
    let start_cost = slif_explore::cost(&mut est, &objectives)?;

    let started = Instant::now();
    let result = match algo {
        "greedy" => greedy_improve(&design, start, &objectives, 50)?,
        "random" => random_search(&design, start, &objectives, 2000, seed)?,
        "sa" => simulated_annealing(
            &design,
            start,
            &objectives,
            AnnealingConfig::default(),
            seed,
        )?,
        "kl" => group_migration(&design, start, &objectives, 8)?,
        "cluster" => cluster_partition(&design, start, &objectives, design.processor_count() + 1)?,
        other => {
            return Err(CliError::Usage(format!(
                "unknown algorithm `{other}` (greedy|random|sa|kl|cluster)"
            )))
        }
    };
    let elapsed = started.elapsed();
    if dot {
        return Ok(slif_core::dot::partitioned_to_dot(
            &design,
            &result.partition,
        ));
    }

    let mut out = String::new();
    let _ = writeln!(out, "partitioning `{}` with {algo}:", design.name());
    let _ = writeln!(
        out,
        "  cost {:.4} -> {:.4} after {} evaluations in {:.1} ms ({:.0} partitions/s)",
        start_cost,
        result.cost,
        result.evaluations,
        elapsed.as_secs_f64() * 1e3,
        result.evaluations as f64 / elapsed.as_secs_f64().max(1e-9)
    );
    let report = DesignReport::compute(&design, &result.partition)?;
    let _ = write!(out, "{report}");
    Ok(out)
}

fn cmd_compare(args: &[String]) -> Result<String, CliError> {
    let spec_arg = args
        .first()
        .ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let rs = load_spec(spec_arg)?;
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let cmp = FormatComparison::measure(&rs, design.graph().channel_count());
    Ok(cmp.to_string())
}

fn cmd_simulate(args: &[String]) -> Result<String, CliError> {
    let mut spec_arg: Option<&str> = None;
    let mut rounds = 16u64;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--rounds" => {
                rounds = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::Usage("--rounds needs a number".to_owned()))?;
            }
            other if spec_arg.is_none() => spec_arg = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let spec_arg = spec_arg.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let rs = load_spec(spec_arg)?;
    let mut stim = Stimulus::new();
    for p in &rs.spec().ports {
        stim = stim.with_port(&p.name, PortStimulus::Ramp { start: 1, step: 7 });
    }
    let result = simulate(
        &rs,
        &stim,
        SimConfig {
            rounds,
            ..SimConfig::default()
        },
    )
    .map_err(|e| CliError::Usage(e.to_string()))?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "simulated `{}` for {rounds} rounds (sim time {}):",
        rs.spec().name,
        result.sim_time
    );
    let mut ports: Vec<_> = result.port_writes.iter().collect();
    ports.sort_by_key(|(name, _)| (*name).clone());
    for (port, values) in ports {
        let tail: Vec<String> = values
            .iter()
            .rev()
            .take(8)
            .rev()
            .map(i64::to_string)
            .collect();
        let _ = writeln!(
            out,
            "  port {:<12} {} writes, last: [{}]",
            port,
            values.len(),
            tail.join(", ")
        );
    }
    let _ = writeln!(out, "dynamic access rates (per source execution):");
    let mut rates: Vec<((String, String), f64)> = result
        .access_counts
        .keys()
        .filter_map(|k| {
            result
                .accesses_per_execution(&k.0, &k.1)
                .map(|r| (k.clone(), r))
        })
        .collect();
    rates.sort_by(|a, b| b.1.total_cmp(&a.1));
    for ((src, dst), rate) in rates.iter().take(12) {
        let _ = writeln!(out, "  {src:<16} -> {dst:<16} x{rate:.2}");
    }
    Ok(out)
}

fn cmd_pareto(args: &[String]) -> Result<String, CliError> {
    let mut spec_arg: Option<&str> = None;
    let mut samples = 3000u64;
    let mut it = args.iter().map(String::as_str);
    while let Some(a) = it.next() {
        match a {
            "--samples" => {
                samples = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| CliError::Usage("--samples needs a number".to_owned()))?;
            }
            other if spec_arg.is_none() => spec_arg = Some(other),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let spec_arg = spec_arg.ok_or_else(|| CliError::Usage(USAGE.to_owned()))?;
    let rs = load_spec(spec_arg)?;
    let (design, start) = build_proc_asic(&rs);
    let front = pareto_sweep(&design, start, samples, 1)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} non-dominated designs from {samples} sampled moves:",
        front.len()
    );
    let _ = writeln!(
        out,
        "  {:>14} {:>12} {:>6}",
        "period (ns)", "hw gates", "pins"
    );
    for p in &front {
        let _ = writeln!(
            out,
            "  {:>14.0} {:>12} {:>6}",
            p.exec_time, p.hw_gates, p.pins
        );
    }
    Ok(out)
}

fn cmd_inline(args: &[String]) -> Result<String, CliError> {
    let (spec_arg, name) = match args {
        [s, n] => (s.as_str(), n.as_str()),
        _ => {
            return Err(CliError::Usage(
                "usage: specsyn inline <spec> <proc>".to_owned(),
            ))
        }
    };
    let rs = load_spec(spec_arg)?;
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let node = design
        .graph()
        .node_by_name(name)
        .ok_or_else(|| CliError::Usage(format!("no behavior named `{name}`")))?;
    let result = inline_procedure(&design, node).map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(format!(
        "inlined `{name}`: nodes {} -> {}, channels {} -> {}
",
        design.graph().node_count(),
        result.design.graph().node_count(),
        design.graph().channel_count(),
        result.design.graph().channel_count()
    ))
}

fn cmd_merge(args: &[String]) -> Result<String, CliError> {
    let (spec_arg, a_name, b_name) = match args {
        [s, a, b] => (s.as_str(), a.as_str(), b.as_str()),
        _ => {
            return Err(CliError::Usage(
                "usage: specsyn merge <spec> <proc1> <proc2>".to_owned(),
            ))
        }
    };
    let rs = load_spec(spec_arg)?;
    let design = build_design(&rs, &TechnologyLibrary::proc_asic());
    let lookup = |name: &str| {
        design
            .graph()
            .node_by_name(name)
            .ok_or_else(|| CliError::Usage(format!("no behavior named `{name}`")))
    };
    let (a, b) = (lookup(a_name)?, lookup(b_name)?);
    let result = merge_processes(&design, a, b).map_err(|e| CliError::Usage(e.to_string()))?;
    Ok(format!(
        "merged `{b_name}` into `{a_name}`: nodes {} -> {}, channels {} -> {}
",
        design.graph().node_count(),
        result.design.graph().node_count(),
        design.graph().channel_count(),
        result.design.graph().channel_count()
    ))
}

/// Regenerates the paper's Figure 4 table with measured timings alongside
/// the published ones.
pub fn cmd_report() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4: results of building SLIF and obtaining estimations"
    );
    let _ = writeln!(
        out,
        "{:<7} {:>6} {:>5} {:>5} | {:>12} {:>12} | {:>12} {:>12}",
        "", "Lines", "BV", "C", "T-slif(meas)", "T-est(meas)", "T-slif(1994)", "T-est(1994)"
    );
    for entry in corpus::all() {
        let rs = entry.load().expect("corpus loads");
        let started = Instant::now();
        let mut design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let t_slif = started.elapsed();
        let arch = allocate_proc_asic(&mut design);
        let part = all_software_partition(&design, arch);
        let started = Instant::now();
        let report = DesignReport::compute(&design, &part).expect("corpus estimates");
        let t_est = started.elapsed();
        let _ = writeln!(
            out,
            "{:<7} {:>6} {:>5} {:>5} | {:>9.3} ms {:>9.3} ms | {:>10.2} s {:>10.2} s",
            entry.name,
            entry.source.lines().count(),
            design.graph().node_count(),
            design.graph().channel_count(),
            t_slif.as_secs_f64() * 1e3,
            t_est.as_secs_f64() * 1e3,
            entry.paper.t_slif_s,
            entry.paper.t_est_s,
        );
        let _ = report;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_args(args: &[&str]) -> Result<String, CliError> {
        let v: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
        run(&v)
    }

    #[test]
    fn list_names_all_examples() {
        let out = run_args(&["list"]).unwrap();
        for name in ["ans", "ether", "fuzzy", "vol"] {
            assert!(out.contains(name), "{out}");
        }
    }

    #[test]
    fn build_summary_matches_figure4_counts() {
        let out = run_args(&["build", "fuzzy"]).unwrap();
        assert!(out.contains("35 behavior/variable objects"), "{out}");
        assert!(out.contains("56 channels"), "{out}");
    }

    #[test]
    fn build_blocks_reports_finer_graph() {
        let coarse = run_args(&["build", "fuzzy"]).unwrap();
        let fine = run_args(&["build", "fuzzy", "--blocks"]).unwrap();
        assert!(coarse.contains("35 behavior/variable objects"), "{coarse}");
        assert!(!fine.contains("35 behavior/variable objects"), "{fine}");
    }

    #[test]
    fn build_dot_emits_graphviz() {
        let out = run_args(&["build", "fuzzy", "--dot"]).unwrap();
        assert!(out.starts_with("digraph slif"));
        assert!(out.contains("FuzzyMain"));
        let annotated = run_args(&["build", "fuzzy", "--dot", "--annotated"]).unwrap();
        assert!(annotated.contains("ict {"), "{annotated}");
    }

    #[test]
    fn estimate_prints_full_report() {
        let out = run_args(&["estimate", "vol"]).unwrap();
        assert!(out.contains("components:"));
        assert!(out.contains("processes:"));
        assert!(out.contains("VolMain"));
    }

    #[test]
    fn partition_improves_or_holds_cost() {
        for algo in ["greedy", "random", "sa", "kl", "cluster"] {
            let out = run_args(&["partition", "vol", "--algo", algo, "--seed", "3"]).unwrap();
            assert!(out.contains("evaluations"), "{algo}: {out}");
        }
    }

    #[test]
    fn partition_dot_emits_clusters() {
        let out = run_args(&["partition", "vol", "--algo", "greedy", "--dot"]).unwrap();
        assert!(out.starts_with("digraph slif_partition"), "{out}");
        assert!(out.contains("subgraph cluster_"), "{out}");
    }

    #[test]
    fn block_granularity_partitioning_runs() {
        let out = run_args(&["partition", "vol", "--algo", "greedy", "--blocks"]).unwrap();
        assert!(out.contains("VolumeMeter@bb"), "{out}");
    }

    #[test]
    fn compare_prints_three_formats() {
        let out = run_args(&["compare", "fuzzy"]).unwrap();
        assert!(out.contains("SLIF-AG"));
        assert!(out.contains("1225"));
    }

    #[test]
    fn report_covers_all_rows() {
        let out = cmd_report();
        for name in ["ans", "ether", "fuzzy", "vol"] {
            assert!(out.contains(name), "{out}");
        }
        assert!(out.contains("T-slif"));
    }

    #[test]
    fn simulate_prints_dynamic_rates() {
        let out = run_args(&["simulate", "fuzzy", "--rounds", "8"]).unwrap();
        assert!(out.contains("dynamic access rates"), "{out}");
        assert!(out.contains("EvaluateRule"), "{out}");
    }

    #[test]
    fn pareto_prints_a_front() {
        let out = run_args(&["pareto", "vol", "--samples", "200"]).unwrap();
        assert!(out.contains("non-dominated"), "{out}");
        assert!(out.contains("period"), "{out}");
    }

    #[test]
    fn inline_and_merge_report_shrinkage() {
        let out = run_args(&["inline", "fuzzy", "RuleStrength"]).unwrap();
        assert!(out.contains("nodes 35 -> 34"), "{out}");
        let out = run_args(&["merge", "vol", "VolMain", "DisplayMain"]).unwrap();
        assert!(out.contains("nodes 30 -> 29"), "{out}");
        assert!(matches!(
            run_args(&["inline", "fuzzy", "FuzzyMain"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn unknown_command_yields_usage() {
        assert!(matches!(run_args(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(run_args(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn build_out_saves_a_reloadable_slif() {
        let dir = std::env::temp_dir().join("specsyn-test-out");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fuzzy.slif");
        let path_str = path.to_str().unwrap().to_owned();
        run_args(&["build", "fuzzy", "--out", &path_str]).unwrap();
        let loaded = load_slif(&path_str).unwrap();
        assert_eq!(loaded.graph().node_count(), 35);
        // Estimating straight from the saved design works.
        let out = run_args(&["estimate", &path_str]).unwrap();
        assert!(out.contains("FuzzyMain"), "{out}");
    }

    #[test]
    fn unknown_spec_is_io_error() {
        assert!(matches!(
            run_args(&["build", "/nonexistent.sl"]),
            Err(CliError::Io(_))
        ));
    }

    #[test]
    fn shipped_profile_files_parse_and_apply() {
        let root = env!("CARGO_MANIFEST_DIR");
        for name in ["fuzzy", "ans"] {
            let path = format!("{root}/../../specs/{name}.prof");
            let text = std::fs::read_to_string(&path).unwrap();
            let profile = Profile::parse(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
            assert!(!profile.is_empty());
            let rs = load_with_profile(name, Some(profile)).unwrap();
            let _ = build_design(&rs, &TechnologyLibrary::proc_asic());
        }
    }

    #[test]
    fn profile_override_changes_frequencies() {
        // Force EvaluateRule's branches to always-taken: the mr1 access
        // frequency rises from 65 to 130.
        let profile =
            Profile::parse("branch EvaluateRule 0 1.0\nbranch EvaluateRule 1 1.0\n").unwrap();
        let rs = load_with_profile("fuzzy", Some(profile)).unwrap();
        let design = build_design(&rs, &TechnologyLibrary::proc_asic());
        let g = design.graph();
        let eval = g.node_by_name("EvaluateRule").unwrap();
        let mr1 = g.node_by_name("mr1").unwrap();
        let c = g
            .find_channel(eval, mr1.into(), slif_core::AccessKind::Read)
            .unwrap();
        assert!(
            (g.channel(c).freq().avg - 130.0).abs() < 1e-9,
            "freq {}",
            g.channel(c).freq().avg
        );
    }
}
