//! # slif-sim — functional simulation of specifications
//!
//! The paper's methodology "starts from a simulatable functional
//! specification" (Section 1); this crate makes the specification
//! language executable. A [`simulate`] run drives the system's input
//! ports from a [`Stimulus`], executes every process once per round, and
//! reports:
//!
//! * the functional outputs (port writes, final variable values),
//! * **dynamic access counts** per (behavior, accessed object) — the
//!   measured counterpart of SLIF's profiled `accfreq` annotations.
//!
//! The second output is what ties simulation back to the paper: the
//! branch-probability profile that SLIF construction uses "may be
//! obtained manually or through profiling", and this simulator *is* that
//! profiler. The repository's integration tests drive the fuzzy
//! controller with a stimulus matching the annotated probabilities and
//! check that the dynamic access rates land on the paper's Figure 3
//! numbers (65 accesses of `mr1` per `EvaluateRule` execution).
//!
//! # Examples
//!
//! ```
//! use slif_sim::{simulate, PortStimulus, SimConfig, Stimulus};
//!
//! let rs = slif_speclang::parse_and_resolve(
//!     "system Doubler;\n\
//!      port i : in int<8>;\n\
//!      port o : out int<8>;\n\
//!      process Main { o = i * 2; }",
//! )?;
//! let stim = Stimulus::new().with_port("i", PortStimulus::Sequence(vec![1, 2, 3]));
//! let result = simulate(&rs, &stim, SimConfig { rounds: 3, ..SimConfig::default() })?;
//! assert_eq!(result.port_writes["o"], vec![2, 4, 6]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod interp;
mod stimulus;

pub use interp::{simulate, SimConfig, SimError, SimResult};
pub use stimulus::{PortStimulus, Stimulus};
