//! The interpreter: round-based execution of a resolved specification.
//!
//! Execution model:
//!
//! * one **round** runs every `process` once, start to finish, in
//!   declaration order (the paper's processes "repeat forever"; a round
//!   is one repetition of each);
//! * input ports sample the stimulus **per read**: the n-th read of a
//!   port anywhere in the run sees the stimulus's n-th value, so a loop
//!   polling a port observes a changing signal (and terminates when the
//!   stimulus says so); output-port writes are recorded in order;
//! * `send` enqueues into the target process's mailbox; `receive` pops
//!   (zero when empty);
//! * `wait n` advances the simulated clock;
//! * array indices wrap modulo the array length (out-of-range accesses
//!   are counted and reported);
//! * `while` loops and call depth are guarded so a mis-specified system
//!   terminates with an error instead of hanging.
//!
//! Besides functional outputs, the simulator counts every system-level
//! access — exactly the events SLIF channels model — so profiled
//! `accfreq` annotations can be validated against dynamic behaviour.

use crate::stimulus::Stimulus;
use slif_speclang::ast::{BehaviorKind, BinOp, Expr, LValue, Stmt, UnOp};
use slif_speclang::{GlobalSymbol, LocalSymbol, ResolvedSpec, Symbol};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;

/// Simulation limits and length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of rounds to run.
    pub rounds: u64,
    /// Maximum iterations of any single `while` loop execution.
    pub max_loop_iters: u64,
    /// Maximum nested call depth.
    pub max_call_depth: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            rounds: 16,
            max_loop_iters: 100_000,
            max_call_depth: 64,
        }
    }
}

/// Error during simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A `while` loop exceeded the iteration guard.
    LoopGuard {
        /// The behavior containing the loop.
        behavior: String,
    },
    /// Calls nested deeper than the guard (runaway recursion through
    /// function values cannot happen — resolution forbids recursion — but
    /// the guard also bounds legitimate deep chains).
    CallDepth {
        /// The behavior whose call overflowed.
        behavior: String,
    },
    /// Division or remainder by zero.
    DivideByZero {
        /// The behavior evaluating the expression.
        behavior: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::LoopGuard { behavior } => {
                write!(f, "while loop in `{behavior}` exceeded the iteration guard")
            }
            SimError::CallDepth { behavior } => {
                write!(f, "call depth exceeded in `{behavior}`")
            }
            SimError::DivideByZero { behavior } => {
                write!(f, "division by zero in `{behavior}`")
            }
        }
    }
}

impl Error for SimError {}

/// The observable outcome of a simulation run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SimResult {
    /// Values written to each output port, in write order.
    pub port_writes: HashMap<String, Vec<i64>>,
    /// Final values of system-level scalar variables.
    pub finals: HashMap<String, i64>,
    /// Dynamic access counts per (behavior, accessed object).
    pub access_counts: HashMap<(String, String), u64>,
    /// Completed start-to-finish executions per behavior.
    pub executions: HashMap<String, u64>,
    /// Simulated time accumulated by `wait` statements.
    pub sim_time: u64,
    /// Array accesses whose index wrapped (out of declared range).
    pub wrapped_indices: u64,
}

impl SimResult {
    /// Dynamic accesses of `target` per execution of `behavior` — the
    /// measured counterpart of a SLIF channel's `accfreq`.
    pub fn accesses_per_execution(&self, behavior: &str, target: &str) -> Option<f64> {
        let count = *self
            .access_counts
            .get(&(behavior.to_owned(), target.to_owned()))?;
        let execs = *self.executions.get(behavior)?;
        if execs == 0 {
            return None;
        }
        Some(count as f64 / execs as f64)
    }
}

/// Runs a resolved specification against a stimulus.
///
/// # Errors
///
/// A [`SimError`] if a guard trips or an arithmetic fault occurs.
///
/// # Examples
///
/// ```
/// use slif_sim::{simulate, SimConfig, Stimulus, PortStimulus};
///
/// let rs = slif_speclang::parse_and_resolve(
///     "system T;\nport i : in int<8>;\nport o : out int<8>;\n\
///      var acc : int<16>;\n\
///      process Main { acc = acc + i; o = acc; }",
/// )?;
/// let stim = Stimulus::new().with_port("i", PortStimulus::Constant(2));
/// let result = simulate(&rs, &stim, SimConfig { rounds: 3, ..SimConfig::default() })?;
/// assert_eq!(result.port_writes["o"], vec![2, 4, 6]);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(
    rs: &ResolvedSpec,
    stimulus: &Stimulus,
    config: SimConfig,
) -> Result<SimResult, SimError> {
    let mut interp = Interp::new(rs, stimulus, config);
    for round in 0..config.rounds {
        interp.round = round;
        for (i, b) in rs.spec().behaviors.iter().enumerate() {
            if b.kind == BehaviorKind::Process {
                interp.run_behavior(i, &[])?;
            }
        }
    }
    Ok(interp.into_result())
}

/// A storage cell: scalar or array.
#[derive(Debug, Clone)]
enum Cell {
    Scalar(i64),
    Array(Vec<i64>),
}

struct Interp<'a> {
    rs: &'a ResolvedSpec,
    stimulus: &'a Stimulus,
    config: SimConfig,
    round: u64,
    globals: Vec<Cell>,
    mailboxes: HashMap<String, VecDeque<i64>>,
    /// Per-port read counters: the n-th read samples the stimulus at n.
    port_ticks: HashMap<String, u64>,
    result: SimResult,
    call_depth: u32,
}

/// One behavior activation's local frame.
struct Frame {
    behavior: usize,
    locals: Vec<Cell>,
    params: Vec<i64>,
    loop_vars: Vec<(String, i64)>,
    return_value: Option<i64>,
}

impl<'a> Interp<'a> {
    fn new(rs: &'a ResolvedSpec, stimulus: &'a Stimulus, config: SimConfig) -> Self {
        let globals = rs
            .spec()
            .vars
            .iter()
            .map(|v| match v.ty.storage() {
                (1, _) => Cell::Scalar(0),
                (words, _) => Cell::Array(vec![0; words as usize]),
            })
            .collect();
        Self {
            rs,
            stimulus,
            config,
            round: 0,
            globals,
            mailboxes: HashMap::new(),
            port_ticks: HashMap::new(),
            result: SimResult {
                port_writes: HashMap::new(),
                finals: HashMap::new(),
                access_counts: HashMap::new(),
                executions: HashMap::new(),
                sim_time: 0,
                wrapped_indices: 0,
            },
            call_depth: 0,
        }
    }

    fn into_result(mut self) -> SimResult {
        for (i, v) in self.rs.spec().vars.iter().enumerate() {
            if let Cell::Scalar(val) = self.globals[i] {
                self.result.finals.insert(v.name.clone(), val);
            }
        }
        self.result
    }

    fn count_access(&mut self, behavior: usize, target: &str) {
        let key = (
            self.rs.spec().behaviors[behavior].name.clone(),
            target.to_owned(),
        );
        *self.result.access_counts.entry(key).or_insert(0) += 1;
    }

    fn run_behavior(&mut self, behavior: usize, args: &[i64]) -> Result<i64, SimError> {
        if self.call_depth >= self.config.max_call_depth {
            return Err(SimError::CallDepth {
                behavior: self.rs.spec().behaviors[behavior].name.clone(),
            });
        }
        self.call_depth += 1;
        let decl = &self.rs.spec().behaviors[behavior];
        let locals = decl
            .locals
            .iter()
            .map(|v| match v.ty.storage() {
                (1, _) => Cell::Scalar(0),
                (words, _) => Cell::Array(vec![0; words as usize]),
            })
            .collect();
        let mut frame = Frame {
            behavior,
            locals,
            params: args.to_vec(),
            loop_vars: Vec::new(),
            return_value: None,
        };
        self.exec_body(&decl.body, &mut frame)?;
        self.call_depth -= 1;
        *self.result.executions.entry(decl.name.clone()).or_insert(0) += 1;
        Ok(frame.return_value.unwrap_or(0))
    }

    fn exec_body(&mut self, body: &[Stmt], frame: &mut Frame) -> Result<(), SimError> {
        for stmt in body {
            if frame.return_value.is_some() {
                return Ok(());
            }
            self.exec_stmt(stmt, frame)?;
        }
        Ok(())
    }

    fn exec_stmt(&mut self, stmt: &Stmt, frame: &mut Frame) -> Result<(), SimError> {
        match stmt {
            Stmt::Assign { lhs, value, .. } => {
                let v = self.eval(value, frame)?;
                self.store(lhs, v, frame)?;
            }
            Stmt::Call { callee, args, .. } => {
                let vals = self.eval_args(args, frame)?;
                let target = self.behavior_index(callee);
                self.count_access(frame.behavior, callee);
                self.run_behavior(target, &vals)?;
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                if self.eval(cond, frame)? != 0 {
                    self.exec_body(then_body, frame)?;
                } else {
                    self.exec_body(else_body, frame)?;
                }
            }
            Stmt::For {
                var, lo, hi, body, ..
            } => {
                let l = self.eval(lo, frame)?;
                let h = self.eval(hi, frame)?;
                frame.loop_vars.push((var.clone(), l));
                for i in l..=h {
                    frame.loop_vars.last_mut().expect("just pushed").1 = i;
                    self.exec_body(body, frame)?;
                    if frame.return_value.is_some() {
                        break;
                    }
                }
                frame.loop_vars.pop();
            }
            Stmt::While { cond, body, .. } => {
                let mut iters = 0u64;
                while self.eval(cond, frame)? != 0 {
                    self.exec_body(body, frame)?;
                    if frame.return_value.is_some() {
                        break;
                    }
                    iters += 1;
                    if iters >= self.config.max_loop_iters {
                        return Err(SimError::LoopGuard {
                            behavior: self.rs.spec().behaviors[frame.behavior].name.clone(),
                        });
                    }
                }
            }
            Stmt::Fork { body, .. } => {
                // Functionally, fork/join runs its calls to completion;
                // concurrency only matters for timing, which the
                // estimators model.
                self.exec_body(body, frame)?;
            }
            Stmt::Send { target, value, .. } => {
                let v = self.eval(value, frame)?;
                self.count_access(frame.behavior, target);
                self.mailboxes
                    .entry(target.clone())
                    .or_default()
                    .push_back(v);
            }
            Stmt::Receive { lhs, .. } => {
                let me = self.rs.spec().behaviors[frame.behavior].name.clone();
                let v = self
                    .mailboxes
                    .entry(me)
                    .or_default()
                    .pop_front()
                    .unwrap_or(0);
                self.store(lhs, v, frame)?;
            }
            Stmt::Return { value, .. } => {
                let v = match value {
                    Some(e) => self.eval(e, frame)?,
                    None => 0,
                };
                frame.return_value = Some(v);
            }
            Stmt::Wait { amount, .. } => {
                self.result.sim_time += amount;
            }
        }
        Ok(())
    }

    fn store(&mut self, lhs: &LValue, value: i64, frame: &mut Frame) -> Result<(), SimError> {
        let name = lhs.name().to_owned();
        let index = match lhs {
            LValue::Index { index, .. } => Some(self.eval(index, frame)?),
            LValue::Name { .. } => None,
        };
        // Loop variables are unassignable (checked); locals/params first.
        match self.rs.lookup(frame.behavior, &name) {
            Some(Symbol::Local(LocalSymbol::Param(i))) => {
                frame.params[i] = value;
            }
            Some(Symbol::Local(LocalSymbol::Local(i))) => {
                write_cell(
                    &mut frame.locals[i],
                    index,
                    value,
                    &mut self.result.wrapped_indices,
                );
            }
            Some(Symbol::Global(GlobalSymbol::Var(i))) => {
                self.count_access(frame.behavior, &name);
                write_cell(
                    &mut self.globals[i],
                    index,
                    value,
                    &mut self.result.wrapped_indices,
                );
            }
            Some(Symbol::Global(GlobalSymbol::Port(i))) => {
                self.count_access(frame.behavior, &name);
                let port = self.rs.spec().ports[i].name.clone();
                self.result.port_writes.entry(port).or_default().push(value);
            }
            other => unreachable!("resolution rejects stores to {other:?}"),
        }
        Ok(())
    }

    fn eval_args(&mut self, args: &[Expr], frame: &mut Frame) -> Result<Vec<i64>, SimError> {
        args.iter().map(|a| self.eval(a, frame)).collect()
    }

    fn behavior_index(&self, name: &str) -> usize {
        match self.rs.global(name) {
            Some(GlobalSymbol::Behavior(i)) => i,
            other => unreachable!("resolution bound `{name}` to {other:?}"),
        }
    }

    fn eval(&mut self, expr: &Expr, frame: &mut Frame) -> Result<i64, SimError> {
        match expr {
            Expr::Int { value, .. } => Ok(*value as i64),
            Expr::Bool { value, .. } => Ok(i64::from(*value)),
            Expr::Name { name, .. } => {
                if let Some(&(_, v)) = frame.loop_vars.iter().rev().find(|(n, _)| n == name) {
                    return Ok(v);
                }
                match self.rs.lookup(frame.behavior, name) {
                    Some(Symbol::Local(LocalSymbol::Param(i))) => Ok(frame.params[i]),
                    Some(Symbol::Local(LocalSymbol::Local(i))) => Ok(read_cell(
                        &frame.locals[i],
                        None,
                        &mut self.result.wrapped_indices,
                    )),
                    Some(Symbol::Global(GlobalSymbol::Var(i))) => {
                        self.count_access(frame.behavior, name);
                        Ok(read_cell(
                            &self.globals[i],
                            None,
                            &mut self.result.wrapped_indices,
                        ))
                    }
                    Some(Symbol::Global(GlobalSymbol::Const(v))) => Ok(v),
                    Some(Symbol::Global(GlobalSymbol::Port(_))) => {
                        self.count_access(frame.behavior, name);
                        let tick = self.port_ticks.entry(name.clone()).or_insert(0);
                        let value = self.stimulus.value(name, *tick);
                        *tick += 1;
                        Ok(value)
                    }
                    other => unreachable!("resolution bound `{name}` to {other:?}"),
                }
            }
            Expr::Index { name, index, .. } => {
                let i = self.eval(index, frame)?;
                match self.rs.lookup(frame.behavior, name) {
                    Some(Symbol::Local(LocalSymbol::Local(l))) => Ok(read_cell(
                        &frame.locals[l],
                        Some(i),
                        &mut self.result.wrapped_indices,
                    )),
                    Some(Symbol::Global(GlobalSymbol::Var(g))) => {
                        self.count_access(frame.behavior, name);
                        Ok(read_cell(
                            &self.globals[g],
                            Some(i),
                            &mut self.result.wrapped_indices,
                        ))
                    }
                    other => unreachable!("resolution bound `{name}` to {other:?}"),
                }
            }
            Expr::Call { callee, args, .. } => {
                let vals = self.eval_args(args, frame)?;
                match callee.as_str() {
                    "min" => Ok(vals[0].min(vals[1])),
                    "max" => Ok(vals[0].max(vals[1])),
                    "abs" => Ok(vals[0].wrapping_abs()),
                    _ => {
                        let target = self.behavior_index(callee);
                        self.count_access(frame.behavior, callee);
                        self.run_behavior(target, &vals)
                    }
                }
            }
            Expr::Binary { op, lhs, rhs, .. } => {
                let l = self.eval(lhs, frame)?;
                let r = self.eval(rhs, frame)?;
                let behavior = || self.rs.spec().behaviors[frame.behavior].name.clone();
                Ok(match op {
                    BinOp::Add => l.wrapping_add(r),
                    BinOp::Sub => l.wrapping_sub(r),
                    BinOp::Mul => l.wrapping_mul(r),
                    BinOp::Div => {
                        if r == 0 {
                            return Err(SimError::DivideByZero {
                                behavior: behavior(),
                            });
                        }
                        l.wrapping_div(r)
                    }
                    BinOp::Rem => {
                        if r == 0 {
                            return Err(SimError::DivideByZero {
                                behavior: behavior(),
                            });
                        }
                        l.wrapping_rem(r)
                    }
                    BinOp::Eq => i64::from(l == r),
                    BinOp::Ne => i64::from(l != r),
                    BinOp::Lt => i64::from(l < r),
                    BinOp::Le => i64::from(l <= r),
                    BinOp::Gt => i64::from(l > r),
                    BinOp::Ge => i64::from(l >= r),
                    BinOp::And => i64::from(l != 0 && r != 0),
                    BinOp::Or => i64::from(l != 0 || r != 0),
                })
            }
            Expr::Unary { op, operand, .. } => {
                let v = self.eval(operand, frame)?;
                Ok(match op {
                    UnOp::Neg => v.wrapping_neg(),
                    UnOp::Not => i64::from(v == 0),
                })
            }
        }
    }
}

fn read_cell(cell: &Cell, index: Option<i64>, wrapped: &mut u64) -> i64 {
    match (cell, index) {
        (Cell::Scalar(v), None) => *v,
        (Cell::Array(values), Some(i)) => {
            let len = values.len() as i64;
            let wrapped_i = i.rem_euclid(len);
            if wrapped_i != i {
                *wrapped += 1;
            }
            values[wrapped_i as usize]
        }
        (Cell::Array(values), None) => values.first().copied().unwrap_or(0),
        (Cell::Scalar(v), Some(_)) => *v,
    }
}

fn write_cell(cell: &mut Cell, index: Option<i64>, value: i64, wrapped: &mut u64) {
    match (cell, index) {
        (Cell::Scalar(v), _) => *v = value,
        (Cell::Array(values), Some(i)) => {
            let len = values.len() as i64;
            let wrapped_i = i.rem_euclid(len);
            if wrapped_i != i {
                *wrapped += 1;
            }
            values[wrapped_i as usize] = value;
        }
        (Cell::Array(values), None) => {
            if let Some(first) = values.first_mut() {
                *first = value;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stimulus::PortStimulus;
    use slif_speclang::parse_and_resolve;

    fn sim(src: &str, stim: Stimulus, rounds: u64) -> SimResult {
        let rs = parse_and_resolve(src).expect("spec loads");
        simulate(
            &rs,
            &stim,
            SimConfig {
                rounds,
                ..SimConfig::default()
            },
        )
        .expect("simulation succeeds")
    }

    #[test]
    fn accumulator_counts_up() {
        let r = sim(
            "system T;\nport i : in int<8>;\nport o : out int<8>;\n\
             var acc : int<16>;\nprocess Main { acc = acc + i; o = acc; }",
            Stimulus::new().with_port("i", PortStimulus::Constant(3)),
            4,
        );
        assert_eq!(r.port_writes["o"], vec![3, 6, 9, 12]);
        assert_eq!(r.finals["acc"], 12);
        assert_eq!(r.executions["Main"], 4);
    }

    #[test]
    fn sequence_stimulus_drives_rounds() {
        let r = sim(
            "system T;\nport i : in int<8>;\nport o : out int<8>;\nprocess Main { o = i * 2; }",
            Stimulus::new().with_port("i", PortStimulus::Sequence(vec![1, 5])),
            4,
        );
        assert_eq!(r.port_writes["o"], vec![2, 10, 2, 10]);
    }

    #[test]
    fn calls_functions_and_builtins() {
        let r = sim(
            "system T;\nport o : out int<8>;\n\
             func F(a : int<8>) -> int<8> { return max(a, 10) + abs(0 - 2); }\n\
             process Main { o = F(3); }",
            Stimulus::new(),
            1,
        );
        assert_eq!(r.port_writes["o"], vec![12]);
        assert_eq!(r.executions["F"], 1);
    }

    #[test]
    fn arrays_and_loops() {
        let r = sim(
            "system T;\nport o : out int<16>;\nvar a : int<8>[8];\nvar s : int<16>;\n\
             process Main {\n\
               for i in 0 .. 7 { a[i] = i * i; }\n\
               s = 0;\n\
               for i in 0 .. 7 { s = s + a[i]; }\n\
               o = s;\n\
             }",
            Stimulus::new(),
            1,
        );
        // Σ i² for i in 0..=7 = 140.
        assert_eq!(r.port_writes["o"], vec![140]);
    }

    #[test]
    fn messages_flow_between_processes() {
        let r = sim(
            "system T;\nport o : out int<8>;\nvar x : int<8>;\n\
             process A { send B 42; }\n\
             process B { receive x; o = x; }",
            Stimulus::new(),
            2,
        );
        // A runs before B each round, so B sees the message same-round.
        assert_eq!(r.port_writes["o"], vec![42, 42]);
    }

    #[test]
    fn receive_on_empty_mailbox_yields_zero() {
        let r = sim(
            "system T;\nport o : out int<8>;\nvar x : int<8>;\n\
             process B { receive x; o = x + 1; }",
            Stimulus::new(),
            1,
        );
        assert_eq!(r.port_writes["o"], vec![1]);
    }

    #[test]
    fn while_loops_run_to_condition() {
        let r = sim(
            "system T;\nport o : out int<8>;\nvar n : int<8>;\n\
             process Main { n = 5; while n > 0 iters 5 { n = n - 1; } o = n; }",
            Stimulus::new(),
            1,
        );
        assert_eq!(r.port_writes["o"], vec![0]);
    }

    #[test]
    fn loop_guard_trips_on_nontermination() {
        let rs = parse_and_resolve(
            "system T;\nvar n : int<8>;\nprocess Main { n = 1; while n > 0 { n = 1; } }",
        )
        .unwrap();
        let err = simulate(
            &rs,
            &Stimulus::new(),
            SimConfig {
                rounds: 1,
                max_loop_iters: 100,
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::LoopGuard { .. }));
    }

    #[test]
    fn divide_by_zero_reported() {
        let rs = parse_and_resolve(
            "system T;\nvar a : int<8>;\nvar b : int<8>;\nprocess Main { a = 1 / b; }",
        )
        .unwrap();
        let err = simulate(&rs, &Stimulus::new(), SimConfig::default()).unwrap_err();
        assert!(matches!(err, SimError::DivideByZero { .. }));
    }

    #[test]
    fn access_counts_match_structure() {
        let r = sim(
            "system T;\nvar x : int<8>;\nvar y : int<8>;\n\
             proc P() { y = x; }\n\
             process Main { call P(); call P(); x = 1; }",
            Stimulus::new(),
            3,
        );
        // Main calls P twice per round, 3 rounds.
        assert_eq!(r.access_counts[&("Main".into(), "P".into())], 6);
        assert_eq!(r.access_counts[&("P".into(), "x".into())], 6);
        assert_eq!(r.accesses_per_execution("Main", "P"), Some(2.0));
        assert_eq!(r.accesses_per_execution("P", "x"), Some(1.0));
        assert_eq!(r.accesses_per_execution("Main", "missing"), None);
    }

    #[test]
    fn out_of_range_indices_wrap_and_count() {
        let r = sim(
            "system T;\nport o : out int<8>;\nvar a : int<8>[4];\n\
             process Main { a[5] = 9; o = a[1]; }",
            Stimulus::new(),
            1,
        );
        assert_eq!(r.port_writes["o"], vec![9]);
        assert_eq!(r.wrapped_indices, 1);
    }

    #[test]
    fn waits_accumulate_sim_time() {
        let r = sim("system T;\nprocess Main { wait 50; }", Stimulus::new(), 4);
        assert_eq!(r.sim_time, 200);
    }

    #[test]
    fn early_return_skips_rest() {
        let r = sim(
            "system T;\nport o : out int<8>;\nvar x : int<8>;\n\
             func F(v : int<8>) -> int<8> {\n\
               if v > 0 { return 1; }\n\
               x = 99;\n\
               return 0;\n\
             }\n\
             process Main { o = F(5); }",
            Stimulus::new(),
            1,
        );
        assert_eq!(r.port_writes["o"], vec![1]);
        assert_eq!(r.finals["x"], 0, "statements after return must not run");
    }
}
