//! Input-port stimulus for simulation runs.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// How an input port behaves over successive reads (the n-th read of the
/// port anywhere in the run samples index n).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PortStimulus {
    /// The port holds one value forever.
    Constant(i64),
    /// The port cycles through a sequence, one value per read.
    Sequence(Vec<i64>),
    /// The port ramps: `start + read_index × step`.
    Ramp {
        /// Value of the first read.
        start: i64,
        /// Increment per read.
        step: i64,
    },
}

impl PortStimulus {
    /// The port's value at the given read index.
    ///
    /// # Panics
    ///
    /// Panics if a `Sequence` stimulus is empty.
    pub fn value_at(&self, round: u64) -> i64 {
        match self {
            PortStimulus::Constant(v) => *v,
            PortStimulus::Sequence(values) => {
                assert!(!values.is_empty(), "empty stimulus sequence");
                values[(round as usize) % values.len()]
            }
            PortStimulus::Ramp { start, step } => {
                start.wrapping_add(step.wrapping_mul(round as i64))
            }
        }
    }
}

/// A full stimulus: per-port behaviours, defaulting to zero for ports
/// without one.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Stimulus {
    ports: HashMap<String, PortStimulus>,
}

impl Stimulus {
    /// Creates an empty stimulus (every input reads as zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a port's behaviour (builder style).
    pub fn with_port(mut self, name: impl Into<String>, s: PortStimulus) -> Self {
        self.ports.insert(name.into(), s);
        self
    }

    /// The value observed by the `tick`-th read of `port` (zero when
    /// unspecified).
    pub fn value(&self, port: &str, tick: u64) -> i64 {
        self.ports.get(port).map_or(0, |s| s.value_at(tick))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_holds() {
        let s = PortStimulus::Constant(7);
        assert_eq!(s.value_at(0), 7);
        assert_eq!(s.value_at(99), 7);
    }

    #[test]
    fn sequence_cycles() {
        let s = PortStimulus::Sequence(vec![1, 2, 3]);
        assert_eq!(s.value_at(0), 1);
        assert_eq!(s.value_at(2), 3);
        assert_eq!(s.value_at(3), 1);
    }

    #[test]
    fn ramp_increments() {
        let s = PortStimulus::Ramp { start: 10, step: 5 };
        assert_eq!(s.value_at(0), 10);
        assert_eq!(s.value_at(4), 30);
    }

    #[test]
    fn unspecified_ports_read_zero() {
        let s = Stimulus::new().with_port("a", PortStimulus::Constant(1));
        assert_eq!(s.value("a", 3), 1);
        assert_eq!(s.value("b", 3), 0);
    }

    #[test]
    #[should_panic(expected = "empty stimulus")]
    fn empty_sequence_panics() {
        PortStimulus::Sequence(vec![]).value_at(0);
    }
}
